package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"localwm/internal/cdfg"
	"localwm/internal/designs"
	"localwm/internal/gcolor"
	"localwm/lwmapi"
)

// cdfgText renders the shared benchmark design as canonical cdfg text.
func cdfgText(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := cdfg.Write(&buf, designs.DAConverter()); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// gcolorText renders a deterministic coloring instance.
func gcolorText(t *testing.T, seed string) string {
	t.Helper()
	g, err := gcolor.RandomGraph(seed, 32, 15, 100)
	if err != nil {
		t.Fatal(err)
	}
	return gcolor.FormatGraph(g)
}

func decodeAPIError(t *testing.T, data []byte) lwmapi.Error {
	t.Helper()
	var e lwmapi.Error
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("error envelope does not decode: %v: %s", err, data)
	}
	return e
}

// TestFamiliesDiscoveryEndpoint: GET /v1/families enumerates the
// registered families with sched as the default; writes are refused.
func TestFamiliesDiscoveryEndpoint(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	resp, data := doJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/families", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var lf lwmapi.ListFamiliesResponse
	if err := json.Unmarshal(data, &lf); err != nil {
		t.Fatal(err)
	}
	if lf.Default != lwmapi.FamilySched {
		t.Errorf("default family %q", lf.Default)
	}
	var names []string
	for _, fi := range lf.Families {
		names = append(names, fi.Name)
		if fi.Description == "" || fi.Defaults.N <= 0 {
			t.Errorf("%s: incomplete listing: %+v", fi.Name, fi)
		}
	}
	if got := strings.Join(names, ","); got != "gcolor,sched,tmwm" {
		t.Errorf("families = %s", got)
	}

	resp, data = doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/families", []byte("{}"))
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d: %s", resp.StatusCode, data)
	}
	if e := decodeAPIError(t, data); e.Code != lwmapi.CodeMethodNotAllowed {
		t.Errorf("POST error code %q", e.Code)
	}
}

// TestFamilyErrorCodes: an unknown family answers 400/family_unknown on
// every compute endpoint, and a family without robustness batteries
// answers 400/family_unsupported on /v1/robustness — both under the full
// legacy envelope.
func TestFamilyErrorCodes(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	for _, ep := range []string{"/v1/embed", "/v1/detect", "/v1/verify", "/v1/designs", "/v1/robustness"} {
		// Family resolution runs before any other validation, so a bare
		// family field suffices on every endpoint.
		body := []byte(`{"family":"nosuch"}`)
		method := http.MethodPost
		if ep == "/v1/designs" {
			method = http.MethodPut
		}
		resp, data := doJSON(t, ts.Client(), method, ts.URL+ep, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d: %s", ep, resp.StatusCode, data)
		}
		e := decodeAPIError(t, data)
		if e.Code != lwmapi.CodeFamilyUnknown {
			t.Errorf("%s: code %q, want %q", ep, e.Code, lwmapi.CodeFamilyUnknown)
		}
		if !strings.Contains(e.Message, "unknown") || !strings.Contains(e.Message, "gcolor") {
			t.Errorf("%s: message should name the registry: %q", ep, e.Message)
		}
		if e.LegacyMessage != e.Message || e.Status != http.StatusBadRequest || e.Retryable {
			t.Errorf("%s: legacy envelope fields wrong: %+v", ep, e)
		}
	}

	design := cdfgText(t)
	for _, fam := range []string{lwmapi.FamilyTmwm, lwmapi.FamilyGcolor} {
		body, _ := json.Marshal(lwmapi.RobustnessRequest{Family: fam, Design: design, Signature: "alice"})
		resp, data := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/robustness", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("robustness %s: status %d: %s", fam, resp.StatusCode, data)
		}
		if e := decodeAPIError(t, data); e.Code != lwmapi.CodeFamilyUnsupported {
			t.Errorf("robustness %s: code %q, want %q", fam, e.Code, lwmapi.CodeFamilyUnsupported)
		}
	}
}

// TestCrossFamilyRefIsolation: refs are family-salted, so the same text
// registered under two families yields distinct refs, and using a ref
// under the wrong family is a definite 400 — never a silent parse of the
// wrong artifact kind.
func TestCrossFamilyRefIsolation(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	design := cdfgText(t)

	// Same cdfg text under sched and tmwm: two unrelated refs.
	schedPut := putDesign(t, ts.Client(), ts.URL, design)
	body, _ := json.Marshal(lwmapi.PutDesignRequest{Family: lwmapi.FamilyTmwm, Design: design})
	resp, data := doJSON(t, ts.Client(), http.MethodPut, ts.URL+"/v1/designs", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tmwm put: status %d: %s", resp.StatusCode, data)
	}
	var tmwmPut lwmapi.PutDesignResponse
	if err := json.Unmarshal(data, &tmwmPut); err != nil {
		t.Fatal(err)
	}
	if tmwmPut.Ref == schedPut.Ref {
		t.Fatal("tmwm and sched refs collide for the same text")
	}
	if tmwmPut.Family != lwmapi.FamilyTmwm {
		t.Errorf("tmwm put echoed family %q", tmwmPut.Family)
	}
	if schedPut.Family != "" {
		t.Errorf("sched put grew a family echo: %q (wire compat)", schedPut.Family)
	}

	// A tmwm ref in a (default) sched detect request: family mismatch 400.
	detBody, _ := json.Marshal(lwmapi.DetectRequest{
		Suspects: []lwmapi.Suspect{{DesignRef: tmwmPut.Ref, Schedule: "step gm1 1\n"}},
		Records:  []lwmapi.Record{FromFixtureRecord(t)},
	})
	resp, data = doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/detect", detBody)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cross-family detect: status %d: %s", resp.StatusCode, data)
	}
	e := decodeAPIError(t, data)
	want := `design is registered under family "tmwm", not "sched"`
	if !strings.Contains(e.Message, want) {
		t.Errorf("cross-family detect message %q, want substring %q", e.Message, want)
	}

	// And the sched ref under gcolor embed: mismatch the other way.
	embBody, _ := json.Marshal(lwmapi.EmbedRequest{
		Family: lwmapi.FamilyGcolor, DesignRef: schedPut.Ref, Signature: "alice",
	})
	resp, data = doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/embed", embBody)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cross-family embed: status %d: %s", resp.StatusCode, data)
	}
	if e := decodeAPIError(t, data); !strings.Contains(e.Message, `registered under family "sched", not "gcolor"`) {
		t.Errorf("cross-family embed message %q", e.Message)
	}
}

// FromFixtureRecord adapts the sched fixture record for requests that
// only need a syntactically valid record.
func FromFixtureRecord(t *testing.T) lwmapi.Record {
	t.Helper()
	fx := makeFixture(t, "iso")
	return fx.records[0]
}

// TestFamilyServeByteIdentity: tmwm and gcolor served through /v1 answer
// byte-for-byte the same embed, detect, and verify bodies regardless of
// the daemon's engine parallelism — the same determinism contract the
// scheduling family has carried since PR 4.
func TestFamilyServeByteIdentity(t *testing.T) {
	for _, fam := range []string{lwmapi.FamilyTmwm, lwmapi.FamilyGcolor} {
		t.Run(fam, func(t *testing.T) {
			design := cdfgText(t)
			if fam == lwmapi.FamilyGcolor {
				design = gcolorText(t, "serve")
			}

			type answers struct{ embed, detect, verify []byte }
			serve := func(workers int) answers {
				srv := New(Config{EngineWorkers: workers})
				ts := httptest.NewServer(srv.Handler())
				defer ts.Close()
				defer srv.Shutdown(context.Background())

				body, _ := json.Marshal(lwmapi.EmbedRequest{
					Family: fam, Design: design, Signature: "alice",
					MarkParams: lwmapi.MarkParams{Workers: workers},
				})
				resp, embedBody := postJSON(t, ts.Client(), ts.URL+"/v1/embed", body)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("embed: status %d: %s", resp.StatusCode, embedBody)
				}
				var er lwmapi.EmbedResponse
				if err := json.Unmarshal(embedBody, &er); err != nil {
					t.Fatal(err)
				}
				if er.MarkedSolution == "" {
					t.Fatalf("%s embed answered no marked solution", fam)
				}

				body, _ = json.Marshal(lwmapi.DetectRequest{
					Family: fam,
					Suspects: []lwmapi.Suspect{
						{Design: er.MarkedDesign, Schedule: er.MarkedSolution},
					},
					Records: er.Records,
					Workers: workers,
				})
				resp, detectBody := postJSON(t, ts.Client(), ts.URL+"/v1/detect", body)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("detect: status %d: %s", resp.StatusCode, detectBody)
				}
				var dr lwmapi.DetectResponse
				if err := json.Unmarshal(detectBody, &dr); err != nil {
					t.Fatal(err)
				}
				if dr.Detected != len(er.Records) {
					t.Fatalf("detected %d of %d", dr.Detected, len(er.Records))
				}

				body, _ = json.Marshal(lwmapi.VerifyRequest{
					Family: fam, Design: er.MarkedDesign, Schedule: er.MarkedSolution,
					Signature: "alice", MarkParams: lwmapi.MarkParams{Workers: workers},
				})
				resp, verifyBody := postJSON(t, ts.Client(), ts.URL+"/v1/verify", body)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("verify: status %d: %s", resp.StatusCode, verifyBody)
				}
				var vr lwmapi.VerifyResponse
				if err := json.Unmarshal(verifyBody, &vr); err != nil {
					t.Fatal(err)
				}
				if !vr.Verified {
					t.Fatalf("true claim not verified: %s", verifyBody)
				}
				return answers{embedBody, detectBody, verifyBody}
			}

			one, eight := serve(1), serve(8)
			if !bytes.Equal(one.embed, eight.embed) {
				t.Errorf("embed differs by worker count:\n%s\n%s", one.embed, eight.embed)
			}
			if !bytes.Equal(one.detect, eight.detect) {
				t.Errorf("detect differs by worker count:\n%s\n%s", one.detect, eight.detect)
			}
			if !bytes.Equal(one.verify, eight.verify) {
				t.Errorf("verify differs by worker count:\n%s\n%s", one.verify, eight.verify)
			}
		})
	}
}

// TestFamilyMetricsAndStats: family-dispatched requests show up in the
// per-family Prometheus series and the /v1/stats families block.
func TestFamilyMetricsAndStats(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	body, _ := json.Marshal(lwmapi.EmbedRequest{
		Family: lwmapi.FamilyGcolor, Design: gcolorText(t, "metrics"), Signature: "alice",
	})
	if resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/embed", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("embed: status %d: %s", resp.StatusCode, data)
	}
	// One deliberate error for the errors counter.
	body, _ = json.Marshal(lwmapi.EmbedRequest{
		Family: lwmapi.FamilyTmwm, Design: "not a design", Signature: "alice",
	})
	if resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/embed", body); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad embed: status %d", resp.StatusCode)
	}

	resp, data := doJSON(t, ts.Client(), http.MethodGet, ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	text := string(data)
	for _, want := range []string{
		`lwmd_family_requests_total{endpoint="embed",family="gcolor"} 1`,
		`lwmd_family_errors_total{endpoint="embed",family="tmwm"} 1`,
		`lwmd_family_requests_total{endpoint="detect",family="sched"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, data = doJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats: status %d", resp.StatusCode)
	}
	var stats map[string]json.RawMessage
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatal(err)
	}
	var fams map[string]map[string]map[string]uint64
	if err := json.Unmarshal(stats["families"], &fams); err != nil {
		t.Fatalf("families stats block: %v: %s", err, stats["families"])
	}
	if got := fams["gcolor"]["embed"]["requests"]; got != 1 {
		t.Errorf("gcolor embed requests = %d: %s", got, stats["families"])
	}
	if got := fams["tmwm"]["embed"]["errors"]; got != 1 {
		t.Errorf("tmwm embed errors = %d: %s", got, stats["families"])
	}
	if _, ok := fams["sched"]; !ok {
		t.Errorf("sched missing from families block: %s", stats["families"])
	}
}
