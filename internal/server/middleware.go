package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// apiError is a handler-produced failure with a definite HTTP status.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

// badRequest builds the 400 an endpoint returns for malformed payloads.
func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// errorBody is the JSON envelope for every non-2xx response.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg, Status: status})
}

// retryAfterSeconds renders Config.RetryAfter as the whole-second header
// value shared by the 429 and drain-time 503 responses (rounded up so a
// sub-second hint never becomes "0").
func (s *Server) retryAfterSeconds() string {
	return strconv.Itoa(int((s.cfg.RetryAfter + time.Second - 1) / time.Second))
}

// endpoint wraps a job-shaped handler with the daemon's whole admission
// path: method check, drain check, deadline, bounded-queue submission,
// panic mapping, and metrics. The inner handler runs on the endpoint's
// worker pool and returns the response value to marshal (or an error).
func (s *Server) endpoint(name string, handle func(r *http.Request) (any, error)) http.Handler {
	em := s.metrics.endpoints[name]
	q := s.queues[name]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		if s.draining.Load() {
			// A draining instance is down only briefly; a well-behaved
			// client should back off and land on its replacement, not
			// hammer this one — same hint the 429 path gives.
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			writeError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()

		start := time.Now()
		var resp any
		var jobErr error
		err := q.submit(ctx, func() {
			if s.testJobStart != nil {
				s.testJobStart(name)
			}
			resp, jobErr = handle(r.WithContext(ctx))
		})
		elapsed := time.Since(start)

		switch {
		case errors.Is(err, ErrQueueFull):
			em.rejected.Add(1)
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			writeError(w, http.StatusTooManyRequests, "queue full, retry later")
			return
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			writeError(w, http.StatusServiceUnavailable, "draining")
			return
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			em.timedOut.Add(1)
			writeError(w, http.StatusGatewayTimeout, "request deadline expired in queue")
			return
		case err != nil:
			var pe *panicError
			if errors.As(err, &pe) {
				em.panicked.Add(1)
				writeError(w, http.StatusInternalServerError, "internal error")
				return
			}
			em.failed.Add(1)
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		em.accepted.Add(1)
		em.lat.add(elapsed)

		if jobErr != nil {
			em.failed.Add(1)
			var ae *apiError
			if errors.As(jobErr, &ae) {
				writeError(w, ae.status, ae.msg)
				return
			}
			writeError(w, http.StatusInternalServerError, jobErr.Error())
			return
		}
		em.completed.Add(1)
		writeJSON(w, http.StatusOK, resp)
	})
}
