package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"time"

	"localwm/internal/obs"
	"localwm/lwmapi"
)

// apiError is a handler-produced failure with a definite HTTP status and
// a wire error code from the lwmapi table. retryAfter, when positive,
// rides out as a Retry-After header — the job-status "come back later"
// hint.
type apiError struct {
	status     int
	code       string
	msg        string
	retryAfter time.Duration
}

func (e *apiError) Error() string { return e.msg }

// rawResponse short-circuits the endpoint success path: the body bytes
// are written verbatim instead of re-marshaled. GET /v1/jobs/{id}/result
// returns one so a stored job result reaches the client byte-identical
// to the synchronous endpoint's answer.
type rawResponse struct {
	status      int
	contentType string
	body        []byte
}

// badRequest builds the 400 an endpoint returns for malformed payloads.
func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, code: lwmapi.CodeBadRequest,
		msg: fmt.Sprintf(format, args...)}
}

// refNotFound builds the 404 a design_ref that doesn't resolve answers.
func refNotFound(ref string) error {
	return &apiError{status: http.StatusNotFound, code: lwmapi.CodeDesignNotFound,
		msg: fmt.Sprintf("design_ref %s: not in registry (never put, or evicted)", ref)}
}

// writeError renders the lwmapi.Error envelope: the typed code plus the
// PR-4 legacy keys ("error", "status"), so old clients keep decoding.
// Retryable is stamped from the status table plus the per-code table
// (job_not_ready is retryable despite its non-retryable 409 status).
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, lwmapi.Error{
		Code:          code,
		Message:       msg,
		Retryable:     lwmapi.RetryableStatus(status) || lwmapi.RetryableCode(code),
		LegacyMessage: msg,
		Status:        status,
	})
}

// retryAfterSeconds renders Config.RetryAfter as the whole-second header
// value shared by the 429 and drain-time 503 responses.
func (s *Server) retryAfterSeconds() string {
	return ceilSeconds(s.cfg.RetryAfter)
}

// ceilSeconds renders a backoff hint as a whole-second Retry-After
// value, rounded up so a sub-second hint never becomes "0".
func ceilSeconds(d time.Duration) string {
	if d <= 0 {
		d = time.Second
	}
	return strconv.Itoa(int((d + time.Second - 1) / time.Second))
}

// reqInfo is the per-request observability carrier: the admission path
// (endpoint) fills in stage timings and the outcome, the observe
// middleware — which sits outside the chaos injector, so even a
// fault-substituted response passes through it — turns the whole thing
// into exactly one structured request log line.
type reqInfo struct {
	queueWait time.Duration
	run       time.Duration
	result    string
	errMsg    string
	// tenant and designRef enrich the flight-recorder entry: the
	// admission path stamps the authenticated namespace, resolveDesign
	// stamps the registry reference a request resolved (if any).
	tenant    string
	designRef string
	// elapsed is the full admission-to-answer duration the endpoint
	// observed into its histogram — the exemplar value, so an exemplar
	// always lands in the bucket of the observation it annotates.
	elapsed time.Duration
	// echoTraceID, when set by a handler, overrides the response's
	// X-Lwm-Trace-Id — GET /v1/jobs/{id} echoes the job's persisted
	// trace ID so the submit→execute→deliver chain shares one ID.
	echoTraceID string
}

type reqInfoKey struct{}

func reqInfoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// statusWriter captures the response status for the request log. It
// forwards Hijack so the chaos injector's connection resets still work
// through it; a hijacked connection leaves status 0.
type statusWriter struct {
	http.ResponseWriter
	status   int
	hijacked bool
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	hj, ok := w.ResponseWriter.(http.Hijacker)
	if !ok {
		return nil, nil, errors.New("server: underlying ResponseWriter does not support hijacking")
	}
	w.hijacked = true
	return hj.Hijack()
}

// observe wraps an API endpoint (outside the chaos injector) with
// request correlation and logging: it adopts the client's
// X-Lwm-Trace-Id (or mints one), attaches an obs.Trace with a root
// "request" span to the context, echoes the trace ID on the response,
// and — when a logger is configured — emits exactly one structured
// request log line whatever the outcome, including requests the chaos
// layer reset or substituted.
//
// The disabled path is free: with no logger and no incoming trace
// header the request passes straight through, no allocation, no
// wrapping.
func (s *Server) observe(name string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tid := obs.TraceID(r.Header.Get(obs.TraceHeader))
		logging := s.logger != nil && s.logger.Enabled(r.Context(), slog.LevelInfo)
		recording := s.recorder != nil
		if !logging && tid == "" && !recording {
			next.ServeHTTP(w, r)
			return
		}
		if tid == "" {
			tid = obs.NewTraceID()
			// Stamp the minted ID onto the request too, so inner layers
			// that read the header (the chaos injector's fault log) see
			// the same ID the request log line will carry.
			r.Header.Set(obs.TraceHeader, string(tid))
		}
		start := time.Now()
		tr := obs.NewTrace(tid)
		ctx := obs.WithTrace(r.Context(), tr)
		ctx, rootSpan := obs.StartSpan(ctx, "request")
		rootSpan.SetAttr("endpoint", name)
		ri := &reqInfo{}
		ctx = context.WithValue(ctx, reqInfoKey{}, ri)
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set(obs.TraceHeader, string(tid))

		// Engine/oracle counters are process-wide cumulatives; a snapshot
		// pair brackets the request so its recorder entry carries the
		// delta (approximate under concurrency, exact when idle).
		var ec0 engineSnapshot
		if recording {
			ec0 = takeEngineSnapshot()
		}

		// The log line is emitted from a defer so a handler panic that
		// escapes (http.ErrAbortHandler from a chaos reset on a
		// non-hijackable writer) still produces its one line; the panic
		// itself keeps unwinding to net/http.
		defer func() {
			rootSpan.Finish()
			total := time.Since(start)
			status := sw.status
			result := ri.result
			if result == "" {
				switch {
				case sw.hijacked || status == 0:
					result = "aborted" // connection severed before a response
				case status < 400:
					result = "ok"
				default:
					result = "error"
				}
			}
			if recording {
				s.recordRequest(name, tid, tr, ri, status, result, start, total, ec0)
			}
			if !logging {
				return
			}
			attrs := []slog.Attr{
				slog.String("trace_id", string(tid)),
				slog.String("endpoint", name),
				slog.Int("status", status),
				slog.String("result", result),
				slog.Float64("queue_wait_ms", durMS(ri.queueWait)),
				slog.Float64("run_ms", durMS(ri.run)),
				slog.Float64("total_ms", durMS(total)),
				slog.Bool("draining", s.draining.Load()),
			}
			if eng := tr.SumPrefix("engine."); eng > 0 {
				attrs = append(attrs, slog.Float64("engine_ms", durMS(eng)))
			}
			if ri.errMsg != "" {
				attrs = append(attrs, slog.String("err", ri.errMsg))
			}
			s.logger.LogAttrs(context.Background(), slog.LevelInfo, "request", attrs...)
		}()
		next.ServeHTTP(sw, r.WithContext(ctx))
	})
}

// durMS renders a duration as fractional milliseconds for log fields.
func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// endpoint wraps a job-shaped handler with the daemon's whole admission
// path: method check, drain check, deadline, bounded-queue submission,
// panic mapping, and metrics. The inner handler runs on the endpoint's
// worker pool and returns the response value to marshal (or an error).
// allow lists the accepted HTTP methods (historically just POST; the
// designs routes add PUT and GET); a handler serving several methods
// dispatches on r.Method itself.
func (s *Server) endpoint(name string, allow []string, handle func(r *http.Request) (any, error)) http.Handler {
	em := s.metrics.endpoints[name]
	q := s.queues[name]
	allowHeader := strings.Join(allow, ", ")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ri := reqInfoFrom(r.Context())
		setResult := func(result, errMsg string) {
			if ri != nil {
				ri.result = result
				ri.errMsg = errMsg
			}
		}
		if !slices.Contains(allow, r.Method) {
			w.Header().Set("Allow", allowHeader)
			msg := allowHeader + " only"
			setResult("error", msg)
			writeError(w, http.StatusMethodNotAllowed, lwmapi.CodeMethodNotAllowed, msg)
			return
		}
		if s.draining.Load() {
			// A draining instance is down only briefly; a well-behaved
			// client should back off and land on its replacement, not
			// hammer this one — same hint the 429 path gives.
			em.drained.Add(1)
			setResult("drained", "")
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			writeError(w, http.StatusServiceUnavailable, lwmapi.CodeDraining, "draining")
			return
		}
		// Tenant admission: authenticate, then spend one token from the
		// tenant's bucket — both before the shared queue, so one tenant's
		// burst is rejected at its own limit instead of consuming queue
		// slots everyone shares. The 429 here is tenant_rate_limited with
		// the bucket's own refill hint, distinct from queue_full: it means
		// "you, specifically, back off", not daemon-wide pressure.
		tn, aerr := s.authenticate(r)
		if aerr != nil {
			em.failed.Add(1)
			setResult("unauthorized", aerr.msg)
			writeError(w, aerr.status, aerr.code, aerr.msg)
			return
		}
		if s.tenants != nil {
			if ok, retryAfter := s.tenants.Allow(tn.t, time.Now()); !ok {
				em.rejected.Add(1)
				s.meter.RateLimited(tn.ns)
				setResult("rate_limited", "")
				w.Header().Set("Retry-After", ceilSeconds(retryAfter))
				writeError(w, http.StatusTooManyRequests, lwmapi.CodeTenantRateLimited,
					"tenant rate limit exhausted, back off")
				return
			}
		}
		s.meter.Request(tn.ns)
		if ri != nil {
			ri.tenant = tn.ns
		}
		r = r.WithContext(withTenantInfo(r.Context(), tn))
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		tr := obs.TraceFrom(ctx)

		start := time.Now()
		var queueWait, runDur time.Duration
		var resp any
		var jobErr error
		err := q.submit(ctx, func() {
			jobStart := time.Now()
			queueWait = jobStart.Sub(start)
			tr.Record(obs.CurrentSpan(ctx), "queue.wait", start, queueWait)
			if s.testJobStart != nil {
				s.testJobStart(name)
			}
			runCtx, runSpan := obs.StartSpan(ctx, "run")
			resp, jobErr = handle(r.WithContext(runCtx))
			runSpan.Finish()
			runDur = time.Since(jobStart)
		})
		elapsed := time.Since(start)
		if ri != nil {
			ri.queueWait = queueWait
			ri.run = runDur
			ri.elapsed = elapsed
		}
		if tr != nil {
			// Stage timings ride back to a tracing client (lwm -trace)
			// on a response header; set before any body write.
			w.Header().Set(obs.TimingHeader,
				fmt.Sprintf("queue_wait_ns=%d;run_ns=%d", queueWait.Nanoseconds(), runDur.Nanoseconds()))
		}

		switch {
		case errors.Is(err, ErrQueueFull):
			em.rejected.Add(1)
			setResult("rejected", "")
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			writeError(w, http.StatusTooManyRequests, lwmapi.CodeQueueFull, "queue full, retry later")
			return
		case errors.Is(err, ErrDraining):
			em.drained.Add(1)
			setResult("drained", "")
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			writeError(w, http.StatusServiceUnavailable, lwmapi.CodeDraining, "draining")
			return
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			em.timedOut.Add(1)
			setResult("timeout", "")
			writeError(w, http.StatusGatewayTimeout, lwmapi.CodeTimeout, "request deadline expired in queue")
			return
		case err != nil:
			var pe *panicError
			if errors.As(err, &pe) {
				em.panicked.Add(1)
				setResult("panic", pe.Error())
				writeError(w, http.StatusInternalServerError, lwmapi.CodeInternal, "internal error")
				return
			}
			em.failed.Add(1)
			setResult("error", err.Error())
			writeError(w, http.StatusInternalServerError, lwmapi.CodeInternal, err.Error())
			return
		}
		em.accepted.Add(1)
		em.lat.add(elapsed)
		em.hist.Observe(elapsed)
		em.queueWait.Observe(queueWait)
		// SLO breach check, cheapest-first: only a request that itself
		// blew the objective pays for the rolling-p99 confirmation, and
		// only a confirmed breach asks the profiler (which debounces) for
		// an on-demand capture.
		if s.cfg.SLO > 0 && elapsed > s.cfg.SLO && s.profiler != nil &&
			em.lat.quantile(0.99) > s.cfg.SLO {
			s.profiler.Trigger("slo:" + name)
		}

		if jobErr != nil {
			em.failed.Add(1)
			setResult("error", jobErr.Error())
			var ae *apiError
			if errors.As(jobErr, &ae) {
				if ae.retryAfter > 0 {
					w.Header().Set("Retry-After", ceilSeconds(ae.retryAfter))
				}
				writeError(w, ae.status, ae.code, ae.msg)
				return
			}
			writeError(w, http.StatusInternalServerError, lwmapi.CodeInternal, jobErr.Error())
			return
		}
		em.completed.Add(1)
		setResult("ok", "")
		if ri != nil && ri.echoTraceID != "" {
			w.Header().Set(obs.TraceHeader, ri.echoTraceID)
		}
		if raw, ok := resp.(*rawResponse); ok {
			w.Header().Set("Content-Type", raw.contentType)
			w.WriteHeader(raw.status)
			_, _ = w.Write(raw.body)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
}
