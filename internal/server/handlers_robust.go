package server

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"localwm/internal/family"
	"localwm/internal/prng"
	"localwm/internal/robust"
	"localwm/lwmapi"
)

// POST /v1/robustness — the attack-campaign endpoint. A campaign
// re-marks the design deterministically (same engine path as /v1/embed),
// runs the battery through internal/robust, and answers the structured
// report. Small campaigns (units <= Config.RobustSyncUnits, async unset)
// run inline on this endpoint's worker pool; larger ones are submitted
// to the durable job queue and answered with the job status — the
// response envelope carries exactly one of report or job, always with
// HTTP 200, so the resilient client treats the dispatch decision as
// data, not as an error. The job's stored result bytes are the same
// envelope with report set, byte-identical to what the synchronous path
// would have answered.

// robustFamily resolves and gates a campaign request's family: attack
// batteries exist only for the scheduling family, so any other family is
// a 400 with the family_unsupported code. Checked both at admission
// (before the dispatch decision, so a campaign never becomes a doomed
// job) and again in runRobustReport (the job executor's entry, covering
// jobs submitted directly through /v1/jobs).
func (s *Server) robustFamily(name string) (family.Protocol, error) {
	proto, err := s.familyOf(name)
	if err != nil {
		return nil, err
	}
	if !proto.Info().Capabilities.Robustness {
		return nil, &apiError{status: http.StatusBadRequest, code: lwmapi.CodeFamilyUnsupported,
			msg: fmt.Sprintf("family %q: robustness campaigns not supported (no attack batteries)", proto.Name())}
	}
	return proto, nil
}

func (s *Server) handleRobustness(r *http.Request) (any, error) {
	var req lwmapi.RobustnessRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	if _, err := s.robustFamily(req.Family); err != nil {
		return nil, err
	}
	// Validate the battery before deciding the dispatch path, so a
	// malformed spec fails 400 here instead of becoming a failed job.
	battery, err := robust.Normalize(req.Battery)
	if err != nil {
		return nil, badRequest("battery: %v", err)
	}
	req.Battery = battery
	if !req.Async && robust.Units(battery) <= s.cfg.RobustSyncUnits {
		return s.runRobust(r.Context(), &req)
	}
	st, err := s.submitJob(r.Context(), &lwmapi.JobRequest{
		Kind:           lwmapi.JobKindRobustness,
		Robustness:     &req,
		WebhookURL:     req.WebhookURL,
		IdempotencyKey: req.IdempotencyKey,
		MaxAttempts:    req.MaxAttempts,
	})
	if err != nil {
		return nil, err
	}
	return &lwmapi.RobustnessResponse{Job: st}, nil
}

// runRobust executes an already-decoded campaign and wraps the report in
// the response envelope. Shared by the synchronous handler and the async
// job executor — the byte-identity contract between POST /v1/robustness
// and a robustness job's stored result rests on the two sharing this
// code (and on the campaign engine's own determinism across worker
// counts).
func (s *Server) runRobust(ctx context.Context, req *lwmapi.RobustnessRequest) (*lwmapi.RobustnessResponse, error) {
	rep, err := s.runRobustReport(ctx, req)
	if err != nil {
		return nil, err
	}
	return &lwmapi.RobustnessResponse{Report: rep}, nil
}

func (s *Server) runRobustReport(ctx context.Context, req *lwmapi.RobustnessRequest) (rep *lwmapi.RobustnessReport, err error) {
	start := time.Now()
	defer s.meterEngine(ctx, start)
	proto, err := s.robustFamily(req.Family)
	if err != nil {
		return nil, err
	}
	defer func() { s.metrics.observeFamily(proto.Name(), epRobust, err) }()
	battery, err := robust.Normalize(req.Battery)
	if err != nil {
		return nil, badRequest("battery: %v", err)
	}
	proto.Normalize(&req.MarkParams)
	// Prepare clones internally and only ever reads the resolved graph,
	// so a ref-resolved design shares the registry's warmed copy.
	d, shared, err := s.resolveDesign(ctx, proto, "design", req.Design, req.DesignRef, false)
	if err != nil {
		return nil, err
	}
	// The campaign engine re-marks through the scheduling engine
	// directly, so unwrap the cdfg (the robustFamily gate guarantees a
	// scheduling design) and build its config the way the protocol does.
	g, _ := family.CDFG(d)
	cfg, err := family.SchedConfig(g, req.MarkParams, s.engineWorkers(req.Workers))
	if err != nil {
		return nil, badRequest("%v", err)
	}
	if !shared {
		family.ObserveGraph(ctx, g)
	}
	base, err := robust.Prepare(ctx, g, prng.Signature(req.Signature), cfg, req.N, cfg.Parallelism)
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		return nil, badRequest("embedding: %v", err)
	}
	rep, err = robust.Run(ctx, &robust.Campaign{
		Baseline: base,
		Seed:     req.Seed,
		Battery:  battery,
		Workers:  cfg.Parallelism,
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		// A campaign-level failure (undetectable baseline) is a property
		// of the request, not of the daemon: retrying replays the same
		// deterministic pipeline to the same end.
		return nil, badRequest("campaign: %v", err)
	}
	s.meter.Campaign(tenantFrom(ctx).ns)
	if s.robustDur != nil {
		s.robustDur.Observe(time.Since(start))
	}
	return rep, nil
}
