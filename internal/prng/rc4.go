// Package prng provides the keyed pseudo-random bitstream that drives every
// signature-dependent choice in the local-watermarking protocols.
//
// The paper generates the stream "using the RC4 stream cipher by iteratively
// encrypting a certain standard seed number keyed with the author's digital
// signature". The one-way property of the generator is what prevents an
// attacker from working backwards from a desired set of constraints to a
// signature that would produce them. RC4 is implemented here from scratch
// (it is a 30-line algorithm) so the repository has no dependency beyond
// the standard library and so tests can pin the exact keystream.
package prng

import "fmt"

// RC4 is the classic Rivest stream cipher used as a keystream generator.
// It is NOT used here for confidentiality — only as a deterministic,
// hard-to-invert pseudo-random function of the author's signature.
type RC4 struct {
	s    [256]byte
	i, j uint8
}

// NewRC4 initializes the cipher with the key-scheduling algorithm (KSA).
// Key length must be in [1, 256] bytes.
func NewRC4(key []byte) (*RC4, error) {
	if len(key) == 0 || len(key) > 256 {
		return nil, fmt.Errorf("prng: RC4 key length %d out of range [1,256]", len(key))
	}
	c := &RC4{}
	for i := 0; i < 256; i++ {
		c.s[i] = byte(i)
	}
	var j uint8
	for i := 0; i < 256; i++ {
		j += c.s[i] + key[i%len(key)]
		c.s[i], c.s[j] = c.s[j], c.s[i]
	}
	return c, nil
}

// NextByte produces the next keystream byte (PRGA step).
func (c *RC4) NextByte() byte {
	c.i++
	c.j += c.s[c.i]
	c.s[c.i], c.s[c.j] = c.s[c.j], c.s[c.i]
	return c.s[uint8(c.s[c.i]+c.s[c.j])]
}

// Clone returns an independent copy of the cipher state. Drawing from the
// clone produces the same keystream the original would, without advancing
// the original.
func (c *RC4) Clone() *RC4 {
	cp := *c
	return &cp
}

// Read fills p with keystream bytes. It never fails; the error is present
// to satisfy io.Reader.
func (c *RC4) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = c.NextByte()
	}
	return len(p), nil
}
