package prng

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// RC4 known-answer keystreams, cross-checked against an independent
// reference implementation and anchored by the classic ciphertext vectors
// below.
func TestRC4KnownVectors(t *testing.T) {
	cases := []struct {
		key, stream string // hex
	}{
		{"0102030405", "b2396305f03dc027ccc3524a0a1118a8"},
		{"01020304050607", "293f02d47f37c9b633f2af5285feb46b"},
		{"0102030405060708", "97ab8a1bf0afb96132f2f67258da15a8"},
		{"0102030405060708090a0b0c0d0e0f10", "9ac7cc9a609d1ef7b2932899cde41b97"},
	}
	for _, c := range cases {
		key, err := hex.DecodeString(c.key)
		if err != nil {
			t.Fatal(err)
		}
		want, err := hex.DecodeString(c.stream)
		if err != nil {
			t.Fatal(err)
		}
		rc4, err := NewRC4(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(want))
		if _, err := rc4.Read(got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("key %s: keystream %x, want %x", c.key, got, want)
		}
	}
}

// The classic published RC4 vectors: encrypting "Plaintext" under "Key"
// and "pedia" under "Wiki".
func TestRC4ClassicCiphertexts(t *testing.T) {
	cases := []struct {
		key, plain, cipher string
	}{
		{"Key", "Plaintext", "bbf316e8d940af0ad3"},
		{"Wiki", "pedia", "1021bf0420"},
	}
	for _, c := range cases {
		rc4, err := NewRC4([]byte(c.key))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(c.plain))
		for i := range got {
			got[i] = c.plain[i] ^ rc4.NextByte()
		}
		if hex.EncodeToString(got) != c.cipher {
			t.Fatalf("RC4(%q, %q) = %x, want %s", c.key, c.plain, got, c.cipher)
		}
	}
}

func TestRC4KeyLengthBounds(t *testing.T) {
	if _, err := NewRC4(nil); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := NewRC4(make([]byte, 257)); err == nil {
		t.Fatal("257-byte key accepted")
	}
	if _, err := NewRC4(make([]byte, 256)); err != nil {
		t.Fatalf("256-byte key rejected: %v", err)
	}
}

func TestBitstreamDeterministic(t *testing.T) {
	a := MustBitstream([]byte("alice"))
	b := MustBitstream([]byte("alice"))
	for i := 0; i < 1000; i++ {
		if a.Bit() != b.Bit() {
			t.Fatalf("same signature diverges at bit %d", i)
		}
	}
}

func TestBitstreamSignatureSeparation(t *testing.T) {
	a := MustBitstream([]byte("alice"))
	b := MustBitstream([]byte("alicf")) // one bit of key difference
	same := 0
	const n = 4096
	for i := 0; i < n; i++ {
		if a.Bit() == b.Bit() {
			same++
		}
	}
	// Independent fair streams agree on ~50%; 40–60% is a >6σ window.
	if same < n*40/100 || same > n*60/100 {
		t.Fatalf("adjacent signatures agree on %d/%d bits", same, n)
	}
}

func TestEmptySignatureRejected(t *testing.T) {
	if _, err := NewBitstream(nil); err == nil {
		t.Fatal("empty signature accepted")
	}
}

func TestLongSignatureFolded(t *testing.T) {
	long := bytes.Repeat([]byte("x"), 1000)
	bs, err := NewBitstream(long)
	if err != nil {
		t.Fatalf("long signature rejected: %v", err)
	}
	// Must differ from a truncated version (folding keeps all bytes live).
	long2 := append(bytes.Repeat([]byte("x"), 999), 'y')
	bs2, err := NewBitstream(long2)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := 0; i < 256; i++ {
		if bs.Bit() != bs2.Bit() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("trailing signature bytes ignored")
	}
}

func TestIntnUniform(t *testing.T) {
	bs := MustBitstream([]byte("uniformity"))
	const n, draws = 7, 14000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[bs.Intn(n)]++
	}
	want := draws / n
	for v, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Fatalf("Intn(%d): value %d drawn %d times, want ≈%d", n, v, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	bs := MustBitstream([]byte("x"))
	for _, n := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			bs.Intn(n)
		}()
	}
}

func TestIntnOneIsFree(t *testing.T) {
	bs := MustBitstream([]byte("x"))
	before := bs.Emitted()
	if bs.Intn(1) != 0 {
		t.Fatal("Intn(1) != 0")
	}
	if bs.Emitted() != before {
		t.Fatal("Intn(1) consumed bits")
	}
}

func TestCoinBias(t *testing.T) {
	bs := MustBitstream([]byte("coin"))
	heads := 0
	const n = 9000
	for i := 0; i < n; i++ {
		if bs.Coin(1, 3) {
			heads++
		}
	}
	if heads < n/3-n/20 || heads > n/3+n/20 {
		t.Fatalf("Coin(1/3): %d/%d heads", heads, n)
	}
}

func TestCoinPanicsMalformed(t *testing.T) {
	bs := MustBitstream([]byte("x"))
	for _, c := range [][2]int{{-1, 2}, {3, 2}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Coin(%d/%d) did not panic", c[0], c[1])
				}
			}()
			bs.Coin(c[0], c[1])
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seedByte byte, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		bs := MustBitstream([]byte{seedByte + 1})
		p := bs.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectOrderedSubset(t *testing.T) {
	bs := MustBitstream([]byte("select"))
	s := bs.Select(5, 12)
	if len(s) != 5 {
		t.Fatalf("Select returned %d items", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 12 || seen[v] {
			t.Fatalf("Select produced bad element %d in %v", v, s)
		}
		seen[v] = true
	}
}

func TestSelectPanicsOutOfRange(t *testing.T) {
	bs := MustBitstream([]byte("x"))
	defer func() {
		if recover() == nil {
			t.Fatal("Select(5,3) did not panic")
		}
	}()
	bs.Select(5, 3)
}

func TestUint64Changes(t *testing.T) {
	bs := MustBitstream([]byte("u64"))
	a, b := bs.Uint64(), bs.Uint64()
	if a == b {
		t.Fatal("consecutive Uint64 equal (vanishingly unlikely)")
	}
}
