package prng

import "fmt"

// Signature is an author's digital signature: an arbitrary byte string
// (e.g. an RSA signature over the design specification, or simply a name).
// Two different signatures yield statistically independent bitstreams.
type Signature []byte

// seedPrefix is the "standard seed number" the paper mentions: a fixed,
// public prefix mixed with the signature so that even a one-byte signature
// keys a full-entropy RC4 state.
var seedPrefix = []byte("localwm-seed-2000:")

// Bitstream is a deterministic bit source keyed by an author signature.
// All watermark-embedding choices (subtree walks, node selections, matching
// picks) consume this stream, so embedding and detection replay identical
// decisions given the same signature and design.
type Bitstream struct {
	c       *RC4
	buf     byte
	nbits   int // bits remaining in buf
	emitted int // total bits produced, for diagnostics
}

// NewBitstream keys a bitstream with the given signature. An empty
// signature is rejected: an unkeyed watermark proves nothing.
func NewBitstream(sig Signature) (*Bitstream, error) {
	if len(sig) == 0 {
		return nil, fmt.Errorf("prng: empty signature")
	}
	key := make([]byte, 0, len(seedPrefix)+len(sig))
	key = append(key, seedPrefix...)
	key = append(key, sig...)
	if len(key) > 256 {
		// RC4 keys cap at 256 bytes; fold longer signatures by XOR into a
		// 256-byte block so no signature bytes are ignored.
		folded := make([]byte, 256)
		for i, b := range key {
			folded[i%256] ^= b
		}
		key = folded
	}
	c, err := NewRC4(key)
	if err != nil {
		return nil, err
	}
	// Drop the first 256 bytes of keystream: the standard mitigation for
	// RC4's biased early output, and it makes related keys diverge fully.
	var drop [256]byte
	_, _ = c.Read(drop[:])
	return &Bitstream{c: c}, nil
}

// MustBitstream is NewBitstream for non-empty literal signatures in tests
// and examples.
func MustBitstream(sig Signature) *Bitstream {
	b, err := NewBitstream(sig)
	if err != nil {
		panic(err)
	}
	return b
}

// Clone returns an independent bitstream that will emit exactly the bits
// the original would emit next, without advancing the original. The
// parallel embedding engine uses clones to pre-draw root-selection
// sequences speculatively while keeping the master stream untouched until
// results commit.
func (b *Bitstream) Clone() *Bitstream {
	return &Bitstream{c: b.c.Clone(), buf: b.buf, nbits: b.nbits, emitted: b.emitted}
}

// Bit returns the next pseudo-random bit.
func (b *Bitstream) Bit() bool {
	if b.nbits == 0 {
		b.buf = b.c.NextByte()
		b.nbits = 8
	}
	bit := b.buf&1 == 1
	b.buf >>= 1
	b.nbits--
	b.emitted++
	return bit
}

// Emitted returns the number of bits consumed so far.
func (b *Bitstream) Emitted() int { return b.emitted }

// Uint64 returns the next 64 pseudo-random bits as an integer.
func (b *Bitstream) Uint64() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b.c.NextByte())
	}
	b.emitted += 64
	return v
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Rejection sampling removes modulo bias so selection probabilities match
// the protocol analysis exactly.
func (b *Bitstream) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("prng: Intn(%d), n must be positive", n))
	}
	if n == 1 {
		return 0
	}
	max := uint64(n)
	// Largest multiple of n that fits in 64 bits.
	limit := (^uint64(0) / max) * max
	for {
		v := b.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Coin returns true with probability num/den (a biased coin). It panics on
// a malformed probability.
func (b *Bitstream) Coin(num, den int) bool {
	if den <= 0 || num < 0 || num > den {
		panic(fmt.Sprintf("prng: Coin(%d/%d) malformed", num, den))
	}
	return b.Intn(den) < num
}

// Perm returns a pseudo-random permutation of [0, n) via Fisher–Yates.
func (b *Bitstream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := b.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Select returns an ordered pseudo-random selection of k distinct indices
// from [0, n) — the "pseudo-randomly ordered selection T” of K nodes from
// T'" of the scheduling protocol. The order of the result is part of the
// watermark. It panics if k is not in [0, n].
func (b *Bitstream) Select(k, n int) []int {
	if k < 0 || k > n {
		panic(fmt.Sprintf("prng: Select(%d of %d) out of range", k, n))
	}
	return b.Perm(n)[:k]
}
