package tmatch

import (
	"testing"

	"localwm/internal/cdfg"
	"localwm/internal/designs"
)

func TestAllocateBudgetMonotone(t *testing.T) {
	g := designs.ModemFilter()
	lib := StandardLibrary()
	cov, err := GreedyCover(g, lib, Constraints{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Allocate(g, lib, cov, cp, nil)
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := Allocate(g, lib, cov, 2*cp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.Modules > tight.Modules {
		t.Fatalf("doubling the budget increased modules: %d -> %d",
			tight.Modules, relaxed.Modules)
	}
	if tight.Modules <= 0 {
		t.Fatal("no modules allocated")
	}
	t.Logf("modem filter: %d modules at CP, %d at 2·CP", tight.Modules, relaxed.Modules)
}

func TestAllocateScheduleLegality(t *testing.T) {
	g := designs.WaveletFilter()
	lib := StandardLibrary()
	cov, err := GreedyCover(g, lib, Constraints{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := Allocate(g, lib, cov, cp+3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.Steps) != len(cov.Matchings) {
		t.Fatal("step vector size mismatch")
	}
	// Every inter-matching dependence must go strictly forward.
	for mi, m := range cov.Matchings {
		for _, v := range m.Nodes {
			for _, w := range g.DataOut(v) {
				if mj, ok := cov.Owner[w]; ok && mj != mi {
					if alloc.Steps[mi] >= alloc.Steps[mj] {
						t.Fatalf("macro dependence %d->%d violated (%d >= %d)",
							mi, mj, alloc.Steps[mi], alloc.Steps[mj])
					}
				}
			}
		}
		if alloc.Steps[mi] < 1 || alloc.Steps[mi] > cp+3 {
			t.Fatalf("macro step %d out of budget", alloc.Steps[mi])
		}
	}
	// Module counts equal observed peaks.
	peak := map[string]map[int]int{}
	for mi, m := range cov.Matchings {
		name := lib.Templates[m.Template].Name
		if peak[name] == nil {
			peak[name] = map[int]int{}
		}
		peak[name][alloc.Steps[mi]]++
	}
	for name, steps := range peak {
		max := 0
		for _, c := range steps {
			if c > max {
				max = c
			}
		}
		if alloc.PerTemplate[name] != max {
			t.Fatalf("template %s: allocation says %d, observed peak %d",
				name, alloc.PerTemplate[name], max)
		}
	}
}

func TestAllocateInfeasibleBudget(t *testing.T) {
	g := designs.EighthOrderCFIIR()
	lib := StandardLibrary()
	cov, err := GreedyCover(g, lib, Constraints{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Allocate(g, lib, cov, 1, nil); err == nil {
		t.Fatal("budget 1 accepted for a deep design")
	}
	if _, err := Allocate(g, lib, cov, 0, nil); err == nil {
		t.Fatal("budget 0 accepted")
	}
}

func TestAllocateEmptyCover(t *testing.T) {
	g := designs.ModemFilter()
	lib := StandardLibrary()
	alloc, err := Allocate(g, lib, &Cover{Owner: map[cdfg.NodeID]int{}}, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Modules != 0 {
		t.Fatalf("empty cover needs %d modules", alloc.Modules)
	}
}
