// Package tmatch is the template-matching substrate of the behavioral
// synthesis flow: a library of datapath modules (each "a set of operation
// trees"), exhaustive enumeration of node-to-module matchings over a CDFG,
// covering of the CDFG by matchings, and allocation of module instances
// under a control-step budget. Template mapping replaces groups of
// primitive operations "with more complex and specialized hardware units
// ... optimized for low area, power, or delay".
//
// The watermarking protocol (package tmwm) builds on two hooks this
// package provides: enumeration restricted to an eligible node set, and
// pseudo-primary-output (PPO) constraints — a PPO variable must remain
// visible in the mapped design, so no matching may swallow its producer as
// an internal node.
package tmatch

import (
	"fmt"

	"localwm/internal/cdfg"
)

// Pattern is one operation slot of a template, a tree mirroring the data
// fan-in of the module. Kids lists only the *internal* operand subtrees —
// operands of the matched graph node that must themselves be produced
// inside the module. Any graph operand not bound to a kid is a free input
// of the module, so a pattern with no kids matches a node of any arity
// whose operation it accepts.
type Pattern struct {
	// Ops lists the operation kinds this slot accepts (any-of). A module's
	// adder slot typically accepts OpAdd and OpSub.
	Ops []cdfg.Op
	// Kids are the internal operand subtrees. Each kid must map to a
	// distinct data operand of the matched node.
	Kids []*Pattern
	// Commutative allows the kids to bind to any of the node's operands;
	// when false, kid i binds to operand i.
	Commutative bool
}

func (p *Pattern) accepts(op cdfg.Op) bool {
	for _, o := range p.Ops {
		if o == op {
			return true
		}
	}
	return false
}

// size returns the number of operation slots in the pattern tree.
func (p *Pattern) size() int {
	n := 1
	for _, k := range p.Kids {
		n += k.size()
	}
	return n
}

// positions lists every pattern node in preorder; the index of a slot in
// this list is its position identifier within matchings.
func (p *Pattern) positions() []*Pattern {
	var out []*Pattern
	var walk func(q *Pattern)
	walk = func(q *Pattern) {
		out = append(out, q)
		for _, k := range q.Kids {
			walk(k)
		}
	}
	walk(p)
	return out
}

// Template is a library module.
type Template struct {
	Name string
	Root *Pattern
}

// Size returns the number of operation slots in the template.
func (t *Template) Size() int { return t.Root.size() }

// Library is an ordered collection of templates. Order is meaningful: a
// matching names its template by index, and the watermark bitstream's
// selections depend on enumeration order.
type Library struct {
	Templates []Template
}

// Validate checks that every template is well-formed.
func (l *Library) Validate() error {
	if len(l.Templates) == 0 {
		return fmt.Errorf("tmatch: empty library")
	}
	for i, t := range l.Templates {
		if t.Name == "" {
			return fmt.Errorf("tmatch: template %d has no name", i)
		}
		if t.Root == nil {
			return fmt.Errorf("tmatch: template %q has no pattern", t.Name)
		}
		for _, p := range t.Root.positions() {
			if len(p.Ops) == 0 {
				return fmt.Errorf("tmatch: template %q has a slot accepting no ops", t.Name)
			}
			for _, o := range p.Ops {
				if !o.IsComputational() {
					return fmt.Errorf("tmatch: template %q accepts non-computational op %v", t.Name, o)
				}
			}
		}
	}
	return nil
}

// Slot builds an internal pattern node.
func Slot(commutative bool, kids []*Pattern, ops ...cdfg.Op) *Pattern {
	return &Pattern{Ops: ops, Kids: kids, Commutative: commutative}
}

// Leaf returns a single-operation slot with only free inputs.
func Leaf(ops ...cdfg.Op) *Pattern {
	return &Pattern{Ops: ops, Commutative: true}
}

// AddOps and MulOps are the operation groups the standard library's adder
// and multiplier slots accept.
var (
	AddOps = []cdfg.Op{cdfg.OpAdd, cdfg.OpSub}
	MulOps = []cdfg.Op{cdfg.OpMul, cdfg.OpMulConst}
)

// StandardLibrary returns the default module library used by the
// evaluation, in the spirit of the paper's Fig. 4 library:
//
//	add    — one ALU (add/sub)
//	mul    — one multiplier (mul/cmul)
//	add2   — two chained additions (the 2-adder template T1)
//	mac    — multiply feeding an addition (T2)
//	addmul — addition feeding a multiplication
//
// plus singleton fallbacks so any computational op is coverable.
func StandardLibrary() *Library {
	return &Library{Templates: []Template{
		{Name: "add", Root: Leaf(AddOps...)},
		{Name: "mul", Root: Leaf(MulOps...)},
		{Name: "add2", Root: Slot(true, []*Pattern{Leaf(AddOps...)}, AddOps...)},
		{Name: "mac", Root: Slot(true, []*Pattern{Leaf(MulOps...)}, AddOps...)},
		{Name: "addmul", Root: Slot(true, []*Pattern{Leaf(AddOps...)}, MulOps...)},
		{Name: "alu", Root: Leaf(
			cdfg.OpAnd, cdfg.OpOr, cdfg.OpXor, cdfg.OpNot, cdfg.OpCmp,
			cdfg.OpShift, cdfg.OpMux, cdfg.OpUnit)},
		{Name: "divider", Root: Leaf(cdfg.OpDiv)},
		{Name: "memport", Root: Leaf(cdfg.OpLoad, cdfg.OpStore)},
		{Name: "brunit", Root: Leaf(cdfg.OpBranch)},
	}}
}
