package tmatch

import (
	"testing"

	"localwm/internal/cdfg"
	"localwm/internal/designs"
)

// macGraph: in -> m (cmul) -> a (add with second input in2).
func macGraph(t *testing.T) *cdfg.Graph {
	t.Helper()
	g := cdfg.New(8)
	in := g.AddNode("in", cdfg.OpInput)
	in2 := g.AddNode("in2", cdfg.OpInput)
	m := g.AddNode("m", cdfg.OpMulConst)
	a := g.AddNode("a", cdfg.OpAdd)
	o := g.AddNode("o", cdfg.OpOutput)
	g.MustAddEdge(in, m, cdfg.DataEdge)
	g.MustAddEdge(m, a, cdfg.DataEdge)
	g.MustAddEdge(in2, a, cdfg.DataEdge)
	g.MustAddEdge(a, o, cdfg.DataEdge)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func libIndex(t *testing.T, lib *Library, name string) int {
	t.Helper()
	for i, tpl := range lib.Templates {
		if tpl.Name == name {
			return i
		}
	}
	t.Fatalf("no template %q", name)
	return -1
}

func TestStandardLibraryValid(t *testing.T) {
	lib := StandardLibrary()
	if err := lib.Validate(); err != nil {
		t.Fatal(err)
	}
	if lib.Templates[libIndex(t, lib, "mac")].Size() != 2 {
		t.Fatal("mac template size != 2")
	}
	if lib.Templates[libIndex(t, lib, "add")].Size() != 1 {
		t.Fatal("add template size != 1")
	}
}

func TestLibraryValidateRejects(t *testing.T) {
	bad := []*Library{
		{},
		{Templates: []Template{{Name: "", Root: Leaf(cdfg.OpAdd)}}},
		{Templates: []Template{{Name: "x", Root: nil}}},
		{Templates: []Template{{Name: "x", Root: Leaf()}}},
		{Templates: []Template{{Name: "x", Root: Leaf(cdfg.OpInput)}}},
	}
	for i, lib := range bad {
		if err := lib.Validate(); err == nil {
			t.Fatalf("bad library %d accepted", i)
		}
	}
}

func TestEnumerateAtMac(t *testing.T) {
	g := macGraph(t)
	lib := StandardLibrary()
	a := g.MustNode("a")
	ms := EnumerateAt(g, lib, a, Constraints{})
	// Expected at node a: "add" singleton; "add2" root-only (partial);
	// "mac" partial (root only) and "mac" full {a, m}.
	var sawAdd, sawMacFull, sawMacPartial bool
	for _, m := range ms {
		name := lib.Templates[m.Template].Name
		switch {
		case name == "add" && len(m.Nodes) == 1:
			sawAdd = true
		case name == "mac" && len(m.Nodes) == 2:
			sawMacFull = true
			if m.Nodes[0] != a || m.Nodes[1] != g.MustNode("m") {
				t.Fatalf("mac binding wrong: %v", m.Nodes)
			}
		case name == "mac" && len(m.Nodes) == 1:
			sawMacPartial = true
		}
	}
	if !sawAdd || !sawMacFull || !sawMacPartial {
		t.Fatalf("missing matchings: add=%v macFull=%v macPartial=%v (%d total)",
			sawAdd, sawMacFull, sawMacPartial, len(ms))
	}
}

func TestEnumerateRespectsFanout(t *testing.T) {
	g := macGraph(t)
	// Give m a second consumer: it can no longer be internal.
	u := g.AddNode("u", cdfg.OpUnit)
	g.MustAddEdge(g.MustNode("m"), u, cdfg.DataEdge)
	lib := StandardLibrary()
	for _, m := range EnumerateAt(g, lib, g.MustNode("a"), Constraints{}) {
		if len(m.Nodes) == 2 && lib.Templates[m.Template].Name == "mac" {
			t.Fatal("mac swallowed a multi-fanout producer")
		}
	}
}

func TestEnumerateRespectsPPO(t *testing.T) {
	g := macGraph(t)
	lib := StandardLibrary()
	ppo := map[cdfg.NodeID]bool{g.MustNode("m"): true}
	for _, m := range EnumerateAt(g, lib, g.MustNode("a"), Constraints{PPO: ppo}) {
		for _, v := range m.Nodes[1:] {
			if ppo[v] {
				t.Fatal("PPO producer matched internally")
			}
		}
	}
	// The PPO node itself may still be a match root.
	ms := EnumerateAt(g, lib, g.MustNode("m"), Constraints{PPO: ppo})
	if len(ms) == 0 {
		t.Fatal("PPO node cannot even root a matching")
	}
}

func TestEnumerateRespectsAllowedAndCovered(t *testing.T) {
	g := macGraph(t)
	lib := StandardLibrary()
	a, m := g.MustNode("a"), g.MustNode("m")
	// a excluded from scope entirely.
	ms := EnumerateAt(g, lib, a, Constraints{Allowed: map[cdfg.NodeID]bool{m: true}})
	if len(ms) != 0 {
		t.Fatal("disallowed root enumerated")
	}
	// m covered: mac full match must disappear.
	for _, mm := range EnumerateAt(g, lib, a, Constraints{Covered: map[cdfg.NodeID]bool{m: true}}) {
		for _, v := range mm.Nodes {
			if v == m {
				t.Fatal("covered node re-matched")
			}
		}
	}
}

func TestEnumerateAllDeterministic(t *testing.T) {
	g := designs.FourthOrderParallelIIR()
	lib := StandardLibrary()
	a := EnumerateAll(g, lib, Constraints{})
	b := EnumerateAll(g, lib, Constraints{})
	if len(a) != len(b) {
		t.Fatal("nondeterministic enumeration size")
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
	if len(a) == 0 {
		t.Fatal("no matchings on the IIR")
	}
}

func TestMatchingKeyDistinguishes(t *testing.T) {
	m1 := Matching{Template: 1, Nodes: []cdfg.NodeID{3, 4}}
	m2 := Matching{Template: 1, Nodes: []cdfg.NodeID{3, 5}}
	m3 := Matching{Template: 2, Nodes: []cdfg.NodeID{3, 4}}
	if m1.Key() == m2.Key() || m1.Key() == m3.Key() {
		t.Fatal("keys collide")
	}
}

func TestGreedyCoverPartition(t *testing.T) {
	g := designs.FourthOrderParallelIIR()
	lib := StandardLibrary()
	cov, err := GreedyCover(g, lib, Constraints{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Exact partition of the computational nodes.
	seen := map[cdfg.NodeID]int{}
	for i, m := range cov.Matchings {
		for _, v := range m.Nodes {
			if prev, dup := seen[v]; dup {
				t.Fatalf("node %s covered by matchings %d and %d", g.Node(v).Name, prev, i)
			}
			seen[v] = i
			if cov.Owner[v] != i {
				t.Fatal("owner map inconsistent")
			}
		}
	}
	for _, v := range g.Computational() {
		if _, ok := seen[v]; !ok {
			t.Fatalf("node %s uncovered", g.Node(v).Name)
		}
	}
	// Greedy should pair at least some ops into multi-op modules on this
	// design (mac structures abound).
	if len(cov.Matchings) >= len(g.Computational()) {
		t.Fatal("covering is all singletons")
	}
}

func TestGreedyCoverHonorsEnforced(t *testing.T) {
	g := macGraph(t)
	lib := StandardLibrary()
	enf := Matching{Template: libIndex(t, lib, "mac"),
		Nodes: []cdfg.NodeID{g.MustNode("a"), g.MustNode("m")}}
	cov, err := GreedyCover(g, lib, Constraints{}, []Matching{enf})
	if err != nil {
		t.Fatal(err)
	}
	if cov.Matchings[0].Key() != enf.Key() {
		t.Fatal("enforced matching not seated first")
	}
	if len(cov.Matchings) != 1 {
		t.Fatalf("cover size %d, want 1", len(cov.Matchings))
	}
}

func TestGreedyCoverRejectsOverlappingEnforced(t *testing.T) {
	g := macGraph(t)
	lib := StandardLibrary()
	a := g.MustNode("a")
	enf := []Matching{
		{Template: libIndex(t, lib, "add"), Nodes: []cdfg.NodeID{a}},
		{Template: libIndex(t, lib, "add2"), Nodes: []cdfg.NodeID{a}},
	}
	if _, err := GreedyCover(g, lib, Constraints{}, enf); err == nil {
		t.Fatal("overlapping enforced matchings accepted")
	}
}

func TestGreedyCoverUncoverable(t *testing.T) {
	g := macGraph(t)
	lib := &Library{Templates: []Template{{Name: "mulonly", Root: Leaf(cdfg.OpMulConst)}}}
	if _, err := GreedyCover(g, lib, Constraints{}, nil); err == nil {
		t.Fatal("uncoverable design accepted")
	}
}

func TestExactCoverOptimal(t *testing.T) {
	g := designs.FourthOrderParallelIIR()
	lib := StandardLibrary()
	exact, err := ExactCover(g, lib, Constraints{}, nil, 30)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := GreedyCover(g, lib, Constraints{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Matchings) > len(greedy.Matchings) {
		t.Fatalf("exact cover (%d) worse than greedy (%d)",
			len(exact.Matchings), len(greedy.Matchings))
	}
	// Partition check.
	seen := map[cdfg.NodeID]bool{}
	for _, m := range exact.Matchings {
		for _, v := range m.Nodes {
			if seen[v] {
				t.Fatal("exact cover overlaps")
			}
			seen[v] = true
		}
	}
	if len(seen) != len(g.Computational()) {
		t.Fatal("exact cover incomplete")
	}
}

func TestExactCoverSizeLimit(t *testing.T) {
	g := designs.DAConverter()
	if _, err := ExactCover(g, StandardLibrary(), Constraints{}, nil, 25); err == nil {
		t.Fatal("oversized exact cover accepted")
	}
}

func TestCountCoveringsPaperShape(t *testing.T) {
	// The paper's Fig. 4 counts 6 ways to cover the enforced 2-adder pair
	// (A5, A6). On our IIR reconstruction, count coverings of an adder
	// pair (aw1, aw2 of section 1 = A1, A2); the exact value depends on
	// the reconstruction, but it must be >= 2 (at least {add2 pair} and
	// {add}+{add}) and small.
	g := designs.FourthOrderParallelIIR()
	lib := StandardLibrary()
	a1, a2 := g.MustNode("A1"), g.MustNode("A2")
	n, err := CountCoverings(g, lib, Constraints{}, []cdfg.NodeID{a1, a2})
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 || n > 200 {
		t.Fatalf("coverings of (A1,A2) = %d, want a small plural count", n)
	}
	t.Logf("coverings of the (A1,A2) adder pair: %d (paper's (A5,A6) example: 6)", n)
}

func TestCountCoveringsEmptyTargets(t *testing.T) {
	g := macGraph(t)
	if _, err := CountCoverings(g, StandardLibrary(), Constraints{}, nil); err == nil {
		t.Fatal("empty target set accepted")
	}
}

func TestCoverUsesAndCovers(t *testing.T) {
	g := designs.FourthOrderParallelIIR()
	lib := StandardLibrary()
	cov, err := GreedyCover(g, lib, Constraints{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	uses := cov.Uses(lib)
	total := 0
	for _, n := range uses {
		total += n
	}
	if total != len(cov.Matchings) {
		t.Fatalf("Uses sums to %d, want %d", total, len(cov.Matchings))
	}
	m := cov.Matchings[0]
	covers := m.Covers()
	if len(covers) != len(m.Nodes) {
		t.Fatal("Covers length mismatch")
	}
	for i := 1; i < len(covers); i++ {
		if covers[i] <= covers[i-1] {
			t.Fatal("Covers not ascending")
		}
	}
}

func TestSortMatchingsOrder(t *testing.T) {
	list := []Matching{
		{Template: 2, Nodes: []cdfg.NodeID{1}},
		{Template: 0, Nodes: []cdfg.NodeID{2, 3}},
		{Template: 0, Nodes: []cdfg.NodeID{1}},
	}
	SortMatchings(list)
	if len(list[0].Nodes) != 2 {
		t.Fatal("larger matching not first")
	}
	if list[1].Template != 0 || list[2].Template != 2 {
		t.Fatal("template tiebreak wrong")
	}
}
