package tmatch

import (
	"testing"
	"testing/quick"

	"localwm/internal/cdfg"
)

// randomDSPDAG builds a deterministic random DAG over the ops the
// standard library covers, so greedy covering must always succeed.
func randomDSPDAG(seed uint32, n int) *cdfg.Graph {
	g := cdfg.New(n + 4)
	rng := seed | 1
	next := func(m int) int {
		rng = rng*1664525 + 1013904223
		return int(rng>>16) % m
	}
	in := g.AddNode("in", cdfg.OpInput)
	ids := []cdfg.NodeID{in}
	for i := 0; i < n; i++ {
		var v cdfg.NodeID
		switch next(4) {
		case 0:
			v = g.AddNode("m"+itoaT(i), cdfg.OpMulConst)
			g.MustAddEdge(ids[next(len(ids))], v, cdfg.DataEdge)
		case 1:
			v = g.AddNode("p"+itoaT(i), cdfg.OpMul)
			g.MustAddEdge(ids[next(len(ids))], v, cdfg.DataEdge)
			g.MustAddEdge(ids[next(len(ids))], v, cdfg.DataEdge)
		default:
			v = g.AddNode("a"+itoaT(i), cdfg.OpAdd)
			g.MustAddEdge(ids[next(len(ids))], v, cdfg.DataEdge)
			g.MustAddEdge(ids[next(len(ids))], v, cdfg.DataEdge)
		}
		ids = append(ids, v)
	}
	return g
}

func itoaT(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// Property: greedy covering always partitions the computational nodes
// exactly, and every matching it seats is internally consistent (internal
// nodes have single fan-out consumed by their parent within the match).
func TestGreedyCoverPartitionProperty(t *testing.T) {
	lib := StandardLibrary()
	f := func(seed uint32) bool {
		g := randomDSPDAG(seed, 35)
		cov, err := GreedyCover(g, lib, Constraints{}, nil)
		if err != nil {
			return false
		}
		covered := map[cdfg.NodeID]bool{}
		for _, m := range cov.Matchings {
			for _, v := range m.Nodes {
				if covered[v] {
					return false
				}
				covered[v] = true
			}
			for _, v := range m.Nodes[1:] {
				if len(g.DataOut(v)) != 1 {
					return false
				}
			}
		}
		return len(covered) == len(g.Computational())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: allocation is monotone in the budget (never more modules at a
// looser budget) and its macro schedule is precedence-legal.
func TestAllocateMonotoneProperty(t *testing.T) {
	lib := StandardLibrary()
	f := func(seed uint32) bool {
		g := randomDSPDAG(seed, 30)
		cov, err := GreedyCover(g, lib, Constraints{}, nil)
		if err != nil {
			return false
		}
		cp, err := g.CriticalPath()
		if err != nil || cp == 0 {
			return err == nil
		}
		tight, err := Allocate(g, lib, cov, cp, nil)
		if err != nil {
			return false
		}
		loose, err := Allocate(g, lib, cov, 2*cp, nil)
		if err != nil {
			return false
		}
		if loose.Registers > tight.Registers+len(cov.Matchings) {
			return false // registers can wiggle, but not explode
		}
		// Macro precedence legality at the tight budget.
		for mi, m := range cov.Matchings {
			for _, v := range m.Nodes {
				for _, w := range g.DataOut(v) {
					if mj, ok := cov.Owner[w]; ok && mj != mi {
						if tight.Steps[mi] >= tight.Steps[mj] {
							return false
						}
					}
				}
			}
		}
		_ = loose
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: enumeration respects the constraint sets — no matching
// touches a covered node, roots stay inside Allowed, internal nodes never
// carry a PPO.
func TestEnumerationConstraintProperty(t *testing.T) {
	lib := StandardLibrary()
	f := func(seed uint32, pick uint8) bool {
		g := randomDSPDAG(seed, 25)
		comp := g.Computational()
		covered := map[cdfg.NodeID]bool{comp[int(pick)%len(comp)]: true}
		ppo := map[cdfg.NodeID]bool{comp[(int(pick)+3)%len(comp)]: true}
		allowed := map[cdfg.NodeID]bool{}
		for i, v := range comp {
			if i%3 != 0 {
				allowed[v] = true
			}
		}
		cons := Constraints{Allowed: allowed, PPO: ppo, Covered: covered}
		for _, m := range EnumerateAll(g, lib, cons) {
			for i, v := range m.Nodes {
				if covered[v] || !allowed[v] {
					return false
				}
				if i > 0 && ppo[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
