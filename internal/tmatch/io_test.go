package tmatch

import (
	"strings"
	"testing"

	"localwm/internal/designs"
)

func TestCoverCodecRoundTrip(t *testing.T) {
	g := designs.DAConverter()
	lib := StandardLibrary()
	cover, err := GreedyCover(g, lib, Constraints{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatCover(g, lib, cover)
	back, err := ParseCover(g, lib, strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	// Write∘Parse is the identity on the serialized bytes.
	if again := FormatCover(g, lib, back); again != text {
		t.Fatalf("cover text not a fixed point:\n%s\nvs\n%s", text, again)
	}
	if len(back.Matchings) != len(cover.Matchings) {
		t.Fatalf("matchings %d != %d", len(back.Matchings), len(cover.Matchings))
	}
	for i, m := range cover.Matchings {
		b := back.Matchings[i]
		if b.Template != m.Template || len(b.Nodes) != len(m.Nodes) {
			t.Fatalf("matching %d changed: %+v vs %+v", i, m, b)
		}
		for j, v := range m.Nodes {
			if b.Nodes[j] != v {
				t.Fatalf("matching %d node %d changed", i, j)
			}
		}
	}
	// Ownership index rebuilt faithfully.
	for v, owner := range cover.Owner {
		if back.Owner[v] != owner {
			t.Fatalf("node %d owner %d != %d", v, back.Owner[v], owner)
		}
	}
}

func TestCoverCodecErrors(t *testing.T) {
	g := designs.DAConverter()
	lib := StandardLibrary()
	for name, text := range map[string]string{
		"no header":        "m add gm1\n",
		"schedule text":    "budget 20\nstep gm1 1\n",
		"unknown template": "cover v1\nm nosuch gm1\n",
		"unknown node":     "cover v1\nm add nosuchnode\n",
		"bare m":           "cover v1\nm add\n",
		"empty":            "",
	} {
		if _, err := ParseCover(g, lib, strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCoverCodecRejectsDoubleOwnership(t *testing.T) {
	g := designs.DAConverter()
	lib := StandardLibrary()
	cover, err := GreedyCover(g, lib, Constraints{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatCover(g, lib, cover)
	lines := strings.SplitAfter(text, "\n")
	// Duplicate the first matching line: its nodes are then owned twice.
	dup := lines[0] + lines[1] + lines[1] + strings.Join(lines[2:], "")
	if _, err := ParseCover(g, lib, strings.NewReader(dup)); err == nil {
		t.Fatal("double-owned node accepted")
	}
}
