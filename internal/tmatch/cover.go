package tmatch

import (
	"fmt"

	"localwm/internal/cdfg"
)

// Cover is a complete template covering of a CDFG: a set of pairwise
// node-disjoint matchings that together claim every computational node in
// scope.
type Cover struct {
	Matchings []Matching
	// Owner maps each covered node to its matching's index in Matchings.
	Owner map[cdfg.NodeID]int
}

// Uses returns how many matchings instantiate each template.
func (c *Cover) Uses(lib *Library) map[string]int {
	out := map[string]int{}
	for _, m := range c.Matchings {
		out[lib.Templates[m.Template].Name]++
	}
	return out
}

// GreedyCover covers every computational node of g with library matchings,
// minimizing the matching count heuristically: the candidate list is
// enumerated exhaustively once, ordered largest-first, and accepted
// whenever disjoint from what is already covered. enforced matchings (the
// watermark's pre-selected node-to-module bindings) are seated first and
// are part of the result.
//
// An error is returned if some node cannot be covered — the library must
// contain a singleton template for every operation kind in scope.
func GreedyCover(g *cdfg.Graph, lib *Library, cons Constraints, enforced []Matching) (*Cover, error) {
	cov := &Cover{Owner: map[cdfg.NodeID]int{}}
	covered := map[cdfg.NodeID]bool{}
	for k, v := range cons.Covered {
		if v {
			covered[k] = true
		}
	}
	seat := func(m Matching) error {
		for _, v := range m.Nodes {
			if covered[v] {
				return fmt.Errorf("tmatch: matching %s overlaps covered node %s", m.Key(), g.Node(v).Name)
			}
		}
		idx := len(cov.Matchings)
		cov.Matchings = append(cov.Matchings, m)
		for _, v := range m.Nodes {
			covered[v] = true
			cov.Owner[v] = idx
		}
		return nil
	}
	for _, m := range enforced {
		if err := seat(m); err != nil {
			return nil, err
		}
	}

	enumCons := cons
	enumCons.Covered = covered
	cands := EnumerateAll(g, lib, enumCons)
	SortMatchings(cands)
	for _, m := range cands {
		ok := true
		for _, v := range m.Nodes {
			if covered[v] {
				ok = false
				break
			}
		}
		if ok {
			if err := seat(m); err != nil {
				return nil, err
			}
		}
	}
	// Completeness check over the scope.
	for _, v := range g.Computational() {
		if cons.Allowed != nil && !cons.Allowed[v] {
			continue
		}
		if !covered[v] {
			return nil, fmt.Errorf("tmatch: node %s (%v) not coverable by library",
				g.Node(v).Name, g.Node(v).Op)
		}
	}
	return cov, nil
}

// ExactCover finds a minimum-cardinality covering by branch and bound.
// Only practical for small scopes (≤ ~25 computational nodes); larger
// scopes should use GreedyCover. enforced matchings are seated first.
func ExactCover(g *cdfg.Graph, lib *Library, cons Constraints, enforced []Matching, maxNodes int) (*Cover, error) {
	if maxNodes == 0 {
		maxNodes = 25
	}
	var scope []cdfg.NodeID
	for _, v := range g.Computational() {
		if cons.Allowed != nil && !cons.Allowed[v] {
			continue
		}
		if cons.Covered != nil && cons.Covered[v] {
			continue
		}
		scope = append(scope, v)
	}
	if len(scope) > maxNodes {
		return nil, fmt.Errorf("tmatch: exact cover scope %d exceeds limit %d", len(scope), maxNodes)
	}

	covered := map[cdfg.NodeID]bool{}
	for k, v := range cons.Covered {
		if v {
			covered[k] = true
		}
	}
	var seated []Matching
	for _, m := range enforced {
		for _, v := range m.Nodes {
			if covered[v] {
				return nil, fmt.Errorf("tmatch: enforced matching %s overlaps", m.Key())
			}
			covered[v] = true
		}
		seated = append(seated, m)
	}

	enumCons := cons
	enumCons.Covered = nil // overlap handled by the search itself
	all := EnumerateAll(g, lib, enumCons)
	SortMatchings(all)
	// Per-node candidate lists.
	byNode := map[cdfg.NodeID][]Matching{}
	for _, v := range scope {
		byNode[v] = MatchingsCovering(all, v)
		ok := false
		for _, m := range byNode[v] {
			if !touchesCovered(m, cons.Covered) {
				ok = true
				break
			}
		}
		if !ok && !covered[v] {
			return nil, fmt.Errorf("tmatch: node %s not coverable", g.Node(v).Name)
		}
	}
	maxSize := 1
	for _, t := range lib.Templates {
		if s := t.Size(); s > maxSize {
			maxSize = s
		}
	}

	best := []Matching(nil)
	bestCount := len(scope) + len(seated) + 1
	var cur []Matching
	var rec func(uncovered int)
	rec = func(uncovered int) {
		if uncovered == 0 {
			if len(cur)+len(seated) < bestCount {
				bestCount = len(cur) + len(seated)
				best = append([]Matching(nil), cur...)
			}
			return
		}
		// Lower bound prune.
		lb := (uncovered + maxSize - 1) / maxSize
		if len(cur)+len(seated)+lb >= bestCount {
			return
		}
		// Branch on the lowest-ID uncovered node.
		var pivot cdfg.NodeID = cdfg.None
		for _, v := range scope {
			if !covered[v] {
				pivot = v
				break
			}
		}
		for _, m := range byNode[pivot] {
			clash := false
			for _, u := range m.Nodes {
				if covered[u] {
					clash = true
					break
				}
			}
			if clash {
				continue
			}
			for _, u := range m.Nodes {
				covered[u] = true
			}
			cur = append(cur, m)
			rec(uncovered - len(m.Nodes))
			cur = cur[:len(cur)-1]
			for _, u := range m.Nodes {
				covered[u] = false
			}
		}
	}
	un := 0
	for _, v := range scope {
		if !covered[v] {
			un++
		}
	}
	rec(un)
	if best == nil && un > 0 {
		return nil, fmt.Errorf("tmatch: no exact cover exists")
	}

	cov := &Cover{Owner: map[cdfg.NodeID]int{}}
	cov.Matchings = append(append([]Matching(nil), seated...), best...)
	for i, m := range cov.Matchings {
		for _, v := range m.Nodes {
			cov.Owner[v] = i
		}
	}
	return cov, nil
}

func touchesCovered(m Matching, covered map[cdfg.NodeID]bool) bool {
	if covered == nil {
		return false
	}
	for _, v := range m.Nodes {
		if covered[v] {
			return true
		}
	}
	return false
}

// CountCoverings counts the number of distinct sets of pairwise-disjoint
// matchings that jointly cover all the given target nodes (extra nodes may
// be covered too). This is the paper's Solutions(m) — "the number of
// different matchings for all nodes covered by the enforced template" —
// used in Pc ≈ Π 1/Solutions(m_i). Exhaustive; intended for the small
// target sets the protocol enforces (|m| ≤ 3).
func CountCoverings(g *cdfg.Graph, lib *Library, cons Constraints, targets []cdfg.NodeID) (uint64, error) {
	if len(targets) == 0 {
		return 0, fmt.Errorf("tmatch: empty target set")
	}
	all := EnumerateAll(g, lib, cons)
	// Candidates: matchings touching at least one target.
	var cands []Matching
	for _, m := range all {
		touch := false
		for _, v := range m.Nodes {
			for _, t := range targets {
				if v == t {
					touch = true
				}
			}
		}
		if touch {
			cands = append(cands, m)
		}
	}
	SortMatchings(cands)

	targetSet := map[cdfg.NodeID]bool{}
	for _, t := range targets {
		targetSet[t] = true
	}
	used := map[cdfg.NodeID]bool{}
	var count uint64
	var rec func(start, remaining int)
	rec = func(start, remaining int) {
		if remaining == 0 {
			count++
			return
		}
		for i := start; i < len(cands); i++ {
			m := cands[i]
			clash := false
			gain := 0
			for _, v := range m.Nodes {
				if used[v] {
					clash = true
					break
				}
				if targetSet[v] {
					gain++
				}
			}
			if clash || gain == 0 {
				continue
			}
			for _, v := range m.Nodes {
				used[v] = true
			}
			rec(i+1, remaining-gain)
			for _, v := range m.Nodes {
				delete(used, v)
			}
		}
	}
	rec(0, len(targets))
	return count, nil
}
