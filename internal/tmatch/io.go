package tmatch

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"localwm/internal/cdfg"
)

// Cover text format
//
// The serialization is the line-oriented companion of the cdfg text
// format for template coverings, shared by the lwm CLI and the lwmd
// daemon — it plays the role a schedule plays for the scheduling family:
//
//	# comment
//	cover v1
//	m <template-name> <node-name> [<node-name>...]
//
// Matching lines appear in cover order (GreedyCover and ExactCover are
// deterministic, so the written form is too); node names are listed in
// the matching's preorder slot order. Write∘Parse is the identity.

// WriteCover serializes c against g and lib in the text format.
func WriteCover(w io.Writer, g *cdfg.Graph, lib *Library, c *Cover) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "cover v1\n")
	for _, m := range c.Matchings {
		if m.Template < 0 || m.Template >= len(lib.Templates) {
			return fmt.Errorf("tmatch: matching references template %d outside the library", m.Template)
		}
		fmt.Fprintf(bw, "m %s", lib.Templates[m.Template].Name)
		for _, v := range m.Nodes {
			fmt.Fprintf(bw, " %s", g.Node(v).Name)
		}
		fmt.Fprintf(bw, "\n")
	}
	return bw.Flush()
}

// FormatCover renders c as its canonical text.
func FormatCover(g *cdfg.Graph, lib *Library, c *Cover) string {
	var sb strings.Builder
	if err := WriteCover(&sb, g, lib, c); err != nil {
		return fmt.Sprintf("tmatch: %v", err)
	}
	return sb.String()
}

// ParseCover reads a covering in the text format, resolving template
// names against lib and node names against g. Disjointness is enforced
// (a node owned by two matchings is a parse error); completeness is not —
// detection against a partial cover simply finds fewer matchings.
func ParseCover(g *cdfg.Graph, lib *Library, r io.Reader) (*Cover, error) {
	byName := map[string]int{}
	for i, t := range lib.Templates {
		if _, dup := byName[t.Name]; dup {
			return nil, fmt.Errorf("tmatch: library has duplicate template name %q", t.Name)
		}
		byName[t.Name] = i
	}
	cov := &Cover{Owner: map[cdfg.NodeID]int{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	header := false
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if !header {
			if len(fields) != 2 || fields[0] != "cover" || fields[1] != "v1" {
				return nil, fmt.Errorf("tmatch: line %d: want 'cover v1' header, got %q", lineno, line)
			}
			header = true
			continue
		}
		if fields[0] != "m" || len(fields) < 3 {
			return nil, fmt.Errorf("tmatch: line %d: want 'm <template> <node>...', got %q", lineno, line)
		}
		ti, ok := byName[fields[1]]
		if !ok {
			return nil, fmt.Errorf("tmatch: line %d: unknown template %q", lineno, fields[1])
		}
		m := Matching{Template: ti}
		for _, name := range fields[2:] {
			node, ok := g.NodeByName(name)
			if !ok {
				return nil, fmt.Errorf("tmatch: line %d: unknown node %q", lineno, name)
			}
			if owner, dup := cov.Owner[node.ID]; dup {
				return nil, fmt.Errorf("tmatch: line %d: node %q already covered by matching %d",
					lineno, name, owner)
			}
			m.Nodes = append(m.Nodes, node.ID)
		}
		idx := len(cov.Matchings)
		cov.Matchings = append(cov.Matchings, m)
		for _, v := range m.Nodes {
			cov.Owner[v] = idx
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !header {
		return nil, fmt.Errorf("tmatch: missing 'cover v1' header")
	}
	return cov, nil
}
