package tmatch

import (
	"fmt"
	"sort"
	"strings"

	"localwm/internal/cdfg"
)

// Matching binds template operation slots to graph nodes: Nodes[i] is the
// graph node matched by preorder pattern position i (Nodes[0] is the
// template root, matched at the node whose output leaves the module).
// Matchings may be partial below the root — an unbound internal slot means
// the module's corresponding input is fed externally, matching the paper's
// example where an addition matches the 2-adder template "as second
// addition ... with no mapping for the first addition". Partial matchings
// always bind a prefix of positions reachable from the root.
type Matching struct {
	Template int // index into the Library
	Nodes    []cdfg.NodeID
}

// Covers returns the covered node set in ascending order.
func (m *Matching) Covers() []cdfg.NodeID {
	return cdfg.SortedIDs(m.Nodes)
}

// Key returns a canonical identity string for deduplication: template
// index plus the position-to-node binding.
func (m *Matching) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "t%d:", m.Template)
	for i, v := range m.Nodes {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	return sb.String()
}

// Constraints restricts matching enumeration.
type Constraints struct {
	// Allowed, when non-nil, is the only node set matchings may touch
	// (both roots and internal nodes). The watermark protocol passes the
	// laxity-filtered subtree T' here.
	Allowed map[cdfg.NodeID]bool
	// PPO marks variables promoted to pseudo-primary outputs: their
	// producer nodes must remain visible, so they may appear in a matching
	// only as the root (whose value leaves the module), never internally.
	PPO map[cdfg.NodeID]bool
	// Covered marks nodes already claimed by accepted matchings
	// ("processed" in the paper's pseudocode); they may not be touched.
	Covered map[cdfg.NodeID]bool
}

func (c Constraints) allows(v cdfg.NodeID) bool {
	if c.Covered != nil && c.Covered[v] {
		return false
	}
	if c.Allowed != nil && !c.Allowed[v] {
		return false
	}
	return true
}

// EnumerateAt returns every matching of every library template rooted at
// node v, respecting cons. Results are deterministic: templates in library
// order, bindings in operand order, deduplicated.
func EnumerateAt(g *cdfg.Graph, lib *Library, v cdfg.NodeID, cons Constraints) []Matching {
	if !g.Node(v).Op.IsComputational() || !cons.allows(v) {
		return nil
	}
	var out []Matching
	seen := map[string]bool{}
	for ti := range lib.Templates {
		t := &lib.Templates[ti]
		for _, bind := range matchPattern(g, t.Root, v, cons) {
			m := Matching{Template: ti, Nodes: bind}
			k := m.Key()
			if !seen[k] {
				seen[k] = true
				out = append(out, m)
			}
		}
	}
	return out
}

// matchPattern returns all preorder bindings of pattern p rooted at graph
// node v (each binding a node list led by v), or nil if v's operation does
// not fit.
func matchPattern(g *cdfg.Graph, p *Pattern, v cdfg.NodeID, cons Constraints) [][]cdfg.NodeID {
	if !p.accepts(g.Node(v).Op) {
		return nil
	}
	if len(p.Kids) == 0 {
		return [][]cdfg.NodeID{{v}}
	}
	operands := g.DataIn(v)
	// Candidate operand indices per kid. A kid may also be skipped
	// (partial matching), encoded as index -1.
	kidOptions := make([][]int, len(p.Kids))
	for ki := range p.Kids {
		opts := []int{-1}
		if p.Commutative {
			for oi := range operands {
				opts = append(opts, oi)
			}
		} else if ki < len(operands) {
			opts = append(opts, ki)
		}
		kidOptions[ki] = opts
	}
	var out [][]cdfg.NodeID
	assign := make([]int, len(p.Kids))
	var rec func(ki int, used map[int]bool)
	rec = func(ki int, used map[int]bool) {
		if ki == len(p.Kids) {
			// Expand this kid assignment into full bindings.
			bindings := [][]cdfg.NodeID{{v}}
			for kj, oi := range assign {
				if oi < 0 {
					continue
				}
				u := operands[oi]
				subs := matchInternal(g, p.Kids[kj], u, cons)
				if len(subs) == 0 {
					return
				}
				var next [][]cdfg.NodeID
				for _, b := range bindings {
					for _, s := range subs {
						nb := append(append([]cdfg.NodeID(nil), b...), s...)
						next = append(next, nb)
					}
				}
				bindings = next
			}
			out = append(out, bindings...)
			return
		}
		for _, oi := range kidOptions[ki] {
			if oi >= 0 && used[oi] {
				continue
			}
			assign[ki] = oi
			if oi >= 0 {
				used[oi] = true
			}
			rec(ki+1, used)
			if oi >= 0 {
				delete(used, oi)
			}
		}
	}
	rec(0, map[int]bool{})
	return out
}

// matchInternal matches pattern p at node u in internal position: u's
// value must be consumed only inside the module (single data fan-out), u
// must not be a PPO producer, and u must be allowed.
func matchInternal(g *cdfg.Graph, p *Pattern, u cdfg.NodeID, cons Constraints) [][]cdfg.NodeID {
	if !g.Node(u).Op.IsComputational() {
		return nil
	}
	if !cons.allows(u) {
		return nil
	}
	if cons.PPO != nil && cons.PPO[u] {
		return nil
	}
	if len(g.DataOut(u)) != 1 {
		return nil
	}
	return matchPattern(g, p, u, cons)
}

// EnumerateAll returns the full ordered matching list M over every allowed
// root, the exhaustive enumeration of the paper's Fig. 5 steps 04–08.
// Complexity is O(τ'·λ) template-root trials, with small per-trial work
// because patterns have at most a few slots.
func EnumerateAll(g *cdfg.Graph, lib *Library, cons Constraints) []Matching {
	var out []Matching
	for _, v := range g.Computational() {
		out = append(out, EnumerateAt(g, lib, v, cons)...)
	}
	return out
}

// MatchingsCovering returns the matchings from list that cover node v.
func MatchingsCovering(list []Matching, v cdfg.NodeID) []Matching {
	var out []Matching
	for _, m := range list {
		for _, u := range m.Nodes {
			if u == v {
				out = append(out, m)
				break
			}
		}
	}
	return out
}

// SortMatchings orders a matching list canonically: larger first, then by
// template index, then by node binding. Greedy covering consumes this
// order, so covering results are deterministic.
func SortMatchings(list []Matching) {
	sort.SliceStable(list, func(i, j int) bool {
		if len(list[i].Nodes) != len(list[j].Nodes) {
			return len(list[i].Nodes) > len(list[j].Nodes)
		}
		if list[i].Template != list[j].Template {
			return list[i].Template < list[j].Template
		}
		a, b := list[i].Nodes, list[j].Nodes
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
