package tmatch

import (
	"fmt"

	"localwm/internal/cdfg"
)

// Allocation is the hardware cost of a covering under a control-step
// budget: each matching is a firing of one module instance, instances of
// the same template are shared across control steps, and the number of
// instances a template needs is the peak number of its matchings scheduled
// in the same step. The paper's Table II reports exactly this quantity
// ("count of used modules to cover the entire design") for two budgets —
// the critical path itself and twice the critical path — which is why the
// same covering costs fewer modules when more steps are available.
type Allocation struct {
	// PerTemplate maps template name to required instance count.
	PerTemplate map[string]int
	// FUs is the total functional-unit instance count.
	FUs int
	// Registers is the number of storage elements the schedule needs: the
	// peak number of values simultaneously alive across a control-step
	// boundary. Values produced for pseudo-primary outputs stay alive to
	// the end of the schedule (they must remain visible), which is how a
	// template watermark's PPO constraints become hardware cost.
	Registers int
	// Modules is the Table II metric: the number of module instantiations
	// used to cover the design (one per matching — datapath-intensive
	// flows like HYPER's instantiate per use) plus the registers the
	// schedule needs. FUs is kept as a diagnostic for sharing-oriented
	// flows.
	Modules int
	// Steps is the macro-level schedule: Steps[i] is the control step of
	// cover.Matchings[i].
	Steps []int
	// Budget is the control-step budget the allocation was made for.
	Budget int
}

// Allocate schedules the cover's matchings into the given number of
// control steps, balancing per-template concurrency, and returns the
// resulting module and register counts. ppo, which may be nil, marks
// nodes whose values are pseudo-primary outputs and must stay registered
// through the end of the schedule. The macro-operation graph (one node per
// matching, unit latency, edges induced by inter-matching data/control
// dependences) is provably acyclic because every matching is a connected
// fan-in tree whose only outbound value leaves through its root.
//
// Scheduling is a balanced list pass: matchings are placed in topological
// order, each at the feasible step where its template currently has the
// lowest usage (ties: earliest). This directly minimizes per-template
// peaks, the quantity that becomes hardware.
func Allocate(g *cdfg.Graph, lib *Library, cover *Cover, budget int, ppo map[cdfg.NodeID]bool) (*Allocation, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("tmatch: non-positive budget %d", budget)
	}
	n := len(cover.Matchings)
	if n == 0 {
		return &Allocation{PerTemplate: map[string]int{}, Budget: budget}, nil
	}

	// Build macro adjacency.
	succ := make([][]int, n)
	pred := make([][]int, n)
	seen := map[[2]int]bool{}
	addEdge := func(a, b int) {
		if a == b || seen[[2]int{a, b}] {
			return
		}
		seen[[2]int{a, b}] = true
		succ[a] = append(succ[a], b)
		pred[b] = append(pred[b], a)
	}
	for _, m := range cover.Matchings {
		for _, v := range m.Nodes {
			mi := cover.Owner[v]
			for _, w := range g.DataOut(v) {
				if mj, ok := cover.Owner[w]; ok && mj != mi {
					addEdge(mi, mj)
				}
			}
			for _, w := range g.ControlOut(v) {
				if mj, ok := cover.Owner[w]; ok && mj != mi {
					addEdge(mi, mj)
				}
			}
		}
	}

	// Topological order (Kahn, smallest index first for determinism).
	indeg := make([]int, n)
	for i := range pred {
		indeg[i] = len(pred[i])
	}
	var frontier []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, i)
		}
	}
	var topo []int
	for len(frontier) > 0 {
		best := 0
		for i := 1; i < len(frontier); i++ {
			if frontier[i] < frontier[best] {
				best = i
			}
		}
		v := frontier[best]
		frontier[best] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		topo = append(topo, v)
		for _, w := range succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				frontier = append(frontier, w)
			}
		}
	}
	if len(topo) != n {
		return nil, fmt.Errorf("tmatch: internal: macro graph has a cycle")
	}

	// ALAP bounds (longest path to a sink).
	lpFrom := make([]int, n)
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		best := 0
		for _, w := range succ[v] {
			if lpFrom[w] > best {
				best = lpFrom[w]
			}
		}
		lpFrom[v] = best + 1
	}
	for _, v := range topo {
		if lpFrom[v] > budget {
			return nil, fmt.Errorf("tmatch: budget %d below macro critical path %d", budget, lpFrom[v])
		}
	}

	steps := make([]int, n)
	// usage[template][step] — counts per template per step.
	usage := make([]map[int]int, len(lib.Templates))
	for i := range usage {
		usage[i] = map[int]int{}
	}
	for _, v := range topo {
		lo := 1
		for _, u := range pred[v] {
			if steps[u]+1 > lo {
				lo = steps[u] + 1
			}
		}
		hi := budget - lpFrom[v] + 1
		if lo > hi {
			return nil, fmt.Errorf("tmatch: internal: window collapsed for matching %d", v)
		}
		t := cover.Matchings[v].Template
		bestStep, bestUse := lo, usage[t][lo]
		for s := lo + 1; s <= hi; s++ {
			if u := usage[t][s]; u < bestUse {
				bestStep, bestUse = s, u
			}
		}
		steps[v] = bestStep
		usage[t][bestStep]++
	}

	alloc := &Allocation{PerTemplate: map[string]int{}, Steps: steps, Budget: budget}
	for ti, t := range lib.Templates {
		peak := 0
		for _, c := range usage[ti] {
			if c > peak {
				peak = c
			}
		}
		if peak > 0 {
			alloc.PerTemplate[t.Name] = peak
			alloc.FUs += peak
		}
	}

	// Register demand: for every value produced by one matching and
	// consumed by another (or marked PPO, or feeding a design output /
	// state element), it is alive from its producer's step until its last
	// consumer's step (the schedule end for PPO/output values). The peak
	// number of values crossing a step boundary is the register count.
	makespan := 0
	for _, st := range steps {
		if st > makespan {
			makespan = st
		}
	}
	// liveDelta[b] accumulates interval starts/ends over boundaries b
	// (boundary b sits after step b, for b in 1..makespan-1).
	liveDelta := make([]int, makespan+3)
	for mi, m := range cover.Matchings {
		root := m.Nodes[0] // the matching's externally visible value
		from := steps[mi]
		to := from
		external := false
		for _, w := range g.DataOut(root) {
			if mj, ok := cover.Owner[w]; ok && mj != mi {
				external = true
				if steps[mj] > to {
					to = steps[mj]
				}
			} else if !ok {
				// Consumer outside the cover (an output or state element):
				// the value is latched one boundary after production.
				external = true
				if from+1 > to {
					to = from + 1
				}
			}
		}
		if ppo != nil && ppo[root] {
			// A pseudo-primary output must exist as an observable register
			// value. A value that already crosses a step boundary is
			// already registered and costs nothing extra; one consumed
			// within its own step must now be latched for one boundary.
			external = true
			if to <= from {
				to = from + 1
			}
		}
		if !external || to <= from {
			continue
		}
		// Alive across boundaries from..to-1.
		liveDelta[from]++
		liveDelta[to]--
	}
	live, peakLive := 0, 0
	for b := 1; b <= makespan; b++ {
		live += liveDelta[b]
		if live > peakLive {
			peakLive = live
		}
	}
	alloc.Registers = peakLive
	alloc.Modules = len(cover.Matchings) + alloc.Registers
	return alloc, nil
}
