package tenant

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Usage is one tenant's running counters. All fields are guarded by the
// Meter's mutex-free sync.Map + per-Usage mutex-free atomics pattern:
// Usage values are only mutated through Meter methods.
type Usage struct {
	// Requests counts requests that passed authentication for this
	// tenant (whatever their eventual result).
	Requests uint64 `json:"requests"`
	// RateLimited counts requests rejected by the tenant's token bucket.
	RateLimited uint64 `json:"rate_limited"`
	// QuotaDenied counts store writes rejected by the tenant's quota.
	QuotaDenied uint64 `json:"quota_denied"`
	// EngineMillis accumulates wall-clock milliseconds spent running the
	// watermarking engine on this tenant's behalf (sync handlers and job
	// attempts both count).
	EngineMillis int64 `json:"engine_ms"`
	// JobsSubmitted counts async jobs accepted for this tenant.
	JobsSubmitted uint64 `json:"jobs_submitted"`
	// Campaigns counts robustness campaigns run for this tenant (sync
	// answers and job attempts both count).
	Campaigns uint64 `json:"campaigns"`
	// StoreBytes / StoreEntries are the tenant's current resident
	// footprint in the design registry (gauges, filled in by the store
	// at snapshot time — the Meter itself doesn't track them).
	StoreBytes   int64 `json:"store_bytes"`
	StoreEntries int64 `json:"store_entries"`
}

// counters is the mutable backing for one tenant's Usage.
type counters struct {
	mu sync.Mutex
	u  Usage
}

// Meter accumulates per-tenant usage. It is independent of the Registry:
// tenants removed from the file keep their counters for the life of the
// process (their history shouldn't vanish from /metrics mid-scrape), and
// the anonymous pseudo-tenant is always present so the lwmd_tenant_*
// metric families exist even on a daemon with no tenants file.
type Meter struct {
	mu  sync.Mutex
	byT map[string]*counters
}

// NewMeter returns a Meter with the anonymous tenant pre-registered.
func NewMeter() *Meter {
	m := &Meter{byT: make(map[string]*counters)}
	m.get(DefaultID)
	return m
}

func (m *Meter) get(id string) *counters {
	if id == "" {
		id = DefaultID
	}
	m.mu.Lock()
	c, ok := m.byT[id]
	if !ok {
		c = &counters{}
		m.byT[id] = c
	}
	m.mu.Unlock()
	return c
}

// Request records one authenticated (or anonymous) request.
func (m *Meter) Request(id string) {
	c := m.get(id)
	c.mu.Lock()
	c.u.Requests++
	c.mu.Unlock()
}

// RateLimited records a token-bucket rejection.
func (m *Meter) RateLimited(id string) {
	c := m.get(id)
	c.mu.Lock()
	c.u.RateLimited++
	c.mu.Unlock()
}

// QuotaDenied records a store-quota rejection.
func (m *Meter) QuotaDenied(id string) {
	c := m.get(id)
	c.mu.Lock()
	c.u.QuotaDenied++
	c.mu.Unlock()
}

// Engine adds engine wall-clock time in milliseconds.
func (m *Meter) Engine(id string, millis int64) {
	if millis < 0 {
		millis = 0
	}
	c := m.get(id)
	c.mu.Lock()
	c.u.EngineMillis += millis
	c.mu.Unlock()
}

// JobSubmitted records one accepted async job.
func (m *Meter) JobSubmitted(id string) {
	c := m.get(id)
	c.mu.Lock()
	c.u.JobsSubmitted++
	c.mu.Unlock()
}

// Campaign records one robustness campaign run.
func (m *Meter) Campaign(id string) {
	c := m.get(id)
	c.mu.Lock()
	c.u.Campaigns++
	c.mu.Unlock()
}

// StoreUsage reports a tenant's current design-registry footprint; the
// Meter calls it at snapshot time so gauges are always fresh.
type StoreUsage func(id string) (bytes, entries int64)

// Snapshot returns every tenant's usage keyed by tenant ID, with store
// gauges filled in via storeOf (may be nil).
func (m *Meter) Snapshot(storeOf StoreUsage) map[string]Usage {
	m.mu.Lock()
	ids := make([]string, 0, len(m.byT))
	for id := range m.byT {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	out := make(map[string]Usage, len(ids))
	for _, id := range ids {
		c := m.get(id)
		c.mu.Lock()
		u := c.u
		c.mu.Unlock()
		if storeOf != nil {
			u.StoreBytes, u.StoreEntries = storeOf(id)
		}
		out[id] = u
	}
	return out
}

// WritePrometheus emits the lwmd_tenant_* families in exposition format
// 0.0.4, one labeled series per tenant, tenants sorted for stable
// scrapes. Unlike the rest of the daemon's metrics (registered
// statically in internal/obs at startup), tenant series are dynamic —
// the tenant set changes on SIGHUP — so they are rendered here and
// appended to the exposition page after the static registry.
func (m *Meter) WritePrometheus(w io.Writer, storeOf StoreUsage) {
	snap := m.Snapshot(storeOf)
	ids := make([]string, 0, len(snap))
	for id := range snap {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	families := []struct {
		name, typ, help string
		value           func(u Usage) float64
	}{
		{"lwmd_tenant_requests_total", "counter", "Authenticated requests per tenant.",
			func(u Usage) float64 { return float64(u.Requests) }},
		{"lwmd_tenant_rate_limited_total", "counter", "Requests rejected by the tenant token bucket.",
			func(u Usage) float64 { return float64(u.RateLimited) }},
		{"lwmd_tenant_quota_denied_total", "counter", "Store writes rejected by tenant quota.",
			func(u Usage) float64 { return float64(u.QuotaDenied) }},
		{"lwmd_tenant_engine_seconds_total", "counter", "Engine wall-clock seconds spent per tenant.",
			func(u Usage) float64 { return float64(u.EngineMillis) / 1e3 }},
		{"lwmd_tenant_jobs_submitted_total", "counter", "Async jobs accepted per tenant.",
			func(u Usage) float64 { return float64(u.JobsSubmitted) }},
		{"lwmd_tenant_campaigns_total", "counter", "Robustness campaigns run per tenant.",
			func(u Usage) float64 { return float64(u.Campaigns) }},
		{"lwmd_tenant_store_bytes", "gauge", "Resident design-registry bytes per tenant.",
			func(u Usage) float64 { return float64(u.StoreBytes) }},
		{"lwmd_tenant_store_entries", "gauge", "Resident design-registry entries per tenant.",
			func(u Usage) float64 { return float64(u.StoreEntries) }},
	}
	for _, f := range families {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, id := range ids {
			fmt.Fprintf(w, "%s{tenant=%q} %g\n", f.name, id, f.value(snap[id]))
		}
	}
}
