package tenant

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func writeTenants(t *testing.T, path, body string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
}

const twoTenants = `{
  "allow_anonymous": true,
  "tenants": [
    {"id": "acme", "api_key": "acme-key-1234", "rate_per_sec": 2, "burst": 2,
     "max_store_bytes": 1024, "max_store_entries": 2, "max_job_backlog": 1,
     "webhook_secret": "acme-hmac"},
    {"id": "globex", "api_key": "globex-key-1234"}
  ]
}`

func loadTwo(t *testing.T) *Registry {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tenants.json")
	writeTenants(t, path, twoTenants)
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAuthenticate(t *testing.T) {
	r := loadTwo(t)
	if got := r.Authenticate("acme-key-1234"); got == nil || got.ID != "acme" {
		t.Fatalf("acme key: got %v", got)
	}
	if got := r.Authenticate("globex-key-1234"); got == nil || got.ID != "globex" {
		t.Fatalf("globex key: got %v", got)
	}
	for _, bad := range []string{"", "wrong", "acme-key-123", "acme-key-12345", "ACME-KEY-1234"} {
		if got := r.Authenticate(bad); got != nil {
			t.Fatalf("key %q authenticated as %s", bad, got.ID)
		}
	}
	// Cleartext keys must not survive parsing.
	for _, tn := range r.All() {
		if tn.APIKey != "" {
			t.Fatalf("tenant %s retains cleartext api key", tn.ID)
		}
	}
	if !r.AllowAnonymous() {
		t.Fatal("allow_anonymous not honored")
	}
}

func TestByID(t *testing.T) {
	r := loadTwo(t)
	if got := r.ByID("acme"); got == nil || got.WebhookSecret != "acme-hmac" {
		t.Fatalf("ByID(acme) = %v", got)
	}
	if got := r.ByID("nobody"); got != nil {
		t.Fatalf("ByID(nobody) = %v", got)
	}
	if got := r.ByID(""); got != nil {
		t.Fatalf("ByID(\"\") = %v", got)
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"bad id":        `{"tenants":[{"id":"Bad ID","api_key":"long-enough-1"}]}`,
		"reserved id":   `{"tenants":[{"id":"anonymous","api_key":"long-enough-1"}]}`,
		"short key":     `{"tenants":[{"id":"a","api_key":"short"}]}`,
		"dup id":        `{"tenants":[{"id":"a","api_key":"long-enough-1"},{"id":"a","api_key":"long-enough-2"}]}`,
		"dup key":       `{"tenants":[{"id":"a","api_key":"long-enough-1"},{"id":"b","api_key":"long-enough-1"}]}`,
		"negative rate": `{"tenants":[{"id":"a","api_key":"long-enough-1","rate_per_sec":-1}]}`,
		"not json":      `not json`,
	}
	for name, body := range cases {
		if _, err := parseFile([]byte(body)); err == nil {
			t.Errorf("%s: parse accepted %s", name, body)
		}
	}
}

func TestReloadRevokesAndAdds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	writeTenants(t, path, twoTenants)
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Authenticate("acme-key-1234") == nil {
		t.Fatal("acme key should authenticate before reload")
	}

	// Revoke acme, add initech.
	writeTenants(t, path, `{"tenants":[
	  {"id": "globex", "api_key": "globex-key-1234"},
	  {"id": "initech", "api_key": "initech-key-1234"}
	]}`)
	if err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	if got := r.Authenticate("acme-key-1234"); got != nil {
		t.Fatalf("revoked key still authenticates as %s", got.ID)
	}
	if r.Authenticate("initech-key-1234") == nil {
		t.Fatal("new key does not authenticate after reload")
	}
	if r.AllowAnonymous() {
		t.Fatal("allow_anonymous should drop with the new file")
	}
	if r.Reloads() != 2 {
		t.Fatalf("Reloads() = %d, want 2", r.Reloads())
	}
}

func TestReloadKeepsOldSetOnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	writeTenants(t, path, twoTenants)
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	writeTenants(t, path, `{broken`)
	if err := r.Reload(); err == nil {
		t.Fatal("Reload accepted broken file")
	}
	if r.Authenticate("acme-key-1234") == nil {
		t.Fatal("previous tenant set lost after failed reload")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("Load of a missing file succeeded")
	}
}

func TestRateLimit(t *testing.T) {
	r := loadTwo(t)
	acme := r.ByID("acme") // rate 2/s, burst 2
	now := time.Unix(1000, 0)

	for i := 0; i < 2; i++ {
		if ok, _ := r.Allow(acme, now); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, wait := r.Allow(acme, now)
	if ok {
		t.Fatal("third immediate request should be rate-limited")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 500ms]", wait)
	}
	// Half a second refills one token at 2/s.
	if ok, _ := r.Allow(acme, now.Add(500*time.Millisecond)); !ok {
		t.Fatal("token did not accrue after refill interval")
	}

	// Unlimited tenant and anonymous traffic always pass.
	globex := r.ByID("globex")
	for i := 0; i < 100; i++ {
		if ok, _ := r.Allow(globex, now); !ok {
			t.Fatal("unlimited tenant rate-limited")
		}
		if ok, _ := r.Allow(nil, now); !ok {
			t.Fatal("anonymous traffic rate-limited")
		}
	}
}

func TestBucketClockSkew(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBucket(1, 1, now)
	if ok, _ := b.take(now); !ok {
		t.Fatal("full bucket refused")
	}
	// A rewound clock must not mint tokens or corrupt the level.
	if ok, _ := b.take(now.Add(-time.Hour)); ok {
		t.Fatal("rewound clock minted a token")
	}
	if ok, _ := b.take(now.Add(time.Second)); !ok {
		t.Fatal("token did not accrue after skew")
	}
}

func TestReloadPreservesBucketLevel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	writeTenants(t, path, twoTenants)
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	acme := r.ByID("acme")
	now := time.Unix(1000, 0)
	// Drain the burst of 2, then reload with the same rate config: the
	// bucket must stay dry (level survives), not refill to full.
	r.Allow(acme, now)
	r.Allow(acme, now)
	if err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := r.Allow(r.ByID("acme"), now); ok {
		t.Fatal("reload with unchanged rate config reset the bucket")
	}

	// Changing the rate config rebuilds the bucket full.
	writeTenants(t, path, strings.Replace(twoTenants, `"burst": 2`, `"burst": 3`, 1))
	if err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := r.Allow(r.ByID("acme"), now); !ok {
		t.Fatal("reload with new rate config should start a fresh full bucket")
	}
}

func TestValidID(t *testing.T) {
	good := []string{"a", "acme", "acme-2", "a_b-c9", strings.Repeat("x", 64)}
	bad := []string{"", "Acme", "a b", "a/b", "a.b", strings.Repeat("x", 65), "ü"}
	for _, id := range good {
		if !ValidID(id) {
			t.Errorf("ValidID(%q) = false", id)
		}
	}
	for _, id := range bad {
		if ValidID(id) {
			t.Errorf("ValidID(%q) = true", id)
		}
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Request("acme")
	m.Request("acme")
	m.RateLimited("acme")
	m.QuotaDenied("acme")
	m.Engine("acme", 120)
	m.JobSubmitted("acme")
	m.Request("") // empty ID folds into anonymous

	snap := m.Snapshot(func(id string) (int64, int64) {
		if id == "acme" {
			return 512, 3
		}
		return 0, 0
	})
	a := snap["acme"]
	if a.Requests != 2 || a.RateLimited != 1 || a.QuotaDenied != 1 ||
		a.EngineMillis != 120 || a.JobsSubmitted != 1 || a.StoreBytes != 512 || a.StoreEntries != 3 {
		t.Fatalf("acme usage = %+v", a)
	}
	if snap[DefaultID].Requests != 1 {
		t.Fatalf("anonymous usage = %+v", snap[DefaultID])
	}

	var sb strings.Builder
	m.WritePrometheus(&sb, nil)
	page := sb.String()
	for _, want := range []string{
		"# TYPE lwmd_tenant_requests_total counter",
		"# TYPE lwmd_tenant_store_bytes gauge",
		`lwmd_tenant_requests_total{tenant="acme"} 2`,
		`lwmd_tenant_requests_total{tenant="anonymous"} 1`,
		`lwmd_tenant_engine_seconds_total{tenant="acme"} 0.12`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition missing %q in:\n%s", want, page)
		}
	}
}

// TestConcurrentUse drives Authenticate/Allow/Reload/Meter from many
// goroutines at once; its value is as a tier-2 race-detector target.
func TestConcurrentUse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	writeTenants(t, path, twoTenants)
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMeter()
	var wg sync.WaitGroup
	start := time.Unix(1000, 0)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tn := r.Authenticate("acme-key-1234")
				if tn == nil {
					t.Error("key failed to authenticate mid-reload")
					return
				}
				now := start.Add(time.Duration(g*200+i) * time.Millisecond)
				if ok, _ := r.Allow(tn, now); ok {
					m.Request(tn.ID)
				} else {
					m.RateLimited(tn.ID)
				}
				if i%50 == 0 {
					if err := r.Reload(); err != nil {
						t.Error(err)
						return
					}
					m.Snapshot(nil)
				}
			}
		}(g)
	}
	wg.Wait()
	snap := m.Snapshot(nil)
	if got := snap["acme"].Requests + snap["acme"].RateLimited; got != 8*200 {
		t.Fatalf("metered %d outcomes, want %d", got, 8*200)
	}
}
