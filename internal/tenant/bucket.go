package tenant

import "time"

// bucket is a classic token bucket: tokens accrue continuously at rate
// per second up to burst, and each admitted request spends one. It is
// not safe for concurrent use on its own — the Registry serializes
// access under its mutex.
//
// The bucket tracks fractional tokens so low rates (0.5/s) work, and it
// starts full: a freshly provisioned (or just-reconfigured) tenant gets
// its burst immediately rather than waiting out a cold start.
type bucket struct {
	rate   float64 // tokens per second (> 0)
	burst  int     // capacity
	tokens float64 // current level, 0..burst
	last   time.Time
}

func newBucket(rate float64, burst int, now time.Time) *bucket {
	return &bucket{rate: rate, burst: burst, tokens: float64(burst), last: now}
}

// take spends one token if available. When the bucket is dry it reports
// how long until a full token accrues — the value surfaced to clients as
// Retry-After (rounded up to whole seconds at the HTTP layer).
func (b *bucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if now.After(b.last) {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if max := float64(b.burst); b.tokens > max {
			b.tokens = max
		}
	}
	// Never rewind on clock skew: keep the later of the two times.
	if now.After(b.last) {
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / b.rate * float64(time.Second))
}
