// Package tenant is the daemon's multi-tenant control plane: the API-key
// registry, per-tenant token-bucket rate limits, store quotas, job
// backlog bounds, and usage metering that let one lwmd instance serve
// many customers without any of them reading — or starving — another.
//
// The model follows the watermarking literature's ownership framing
// (ICMarks runs insertion/extraction per design owner; SIGNED's
// challenge-response interrogation assumes per-owner keys): every piece
// of customer state — designs in the registry, async jobs, webhook
// secrets — belongs to exactly one tenant, identified by an API key.
//
//   - Keys are never stored in cleartext: the registry indexes tenants by
//     the SHA-256 digest of the key, and lookups compare digests in
//     constant time, so neither the file on disk nor the authentication
//     path leaks key material through content or timing.
//   - The tenants file is hot-reloadable: cmd/lwmd re-reads it on SIGHUP,
//     so keys can be provisioned and revoked without a restart. Token
//     buckets and usage counters survive a reload for tenants whose ID
//     persists; a revoked key stops authenticating on the very next
//     request.
//   - Limits are all zero-defaultable: a tenant row with no rate or quota
//     fields gets unlimited everything, so a tenants file can start as
//     pure authentication and grow metering later.
//
// The zero configuration — no registry at all — is the single-tenant
// daemon exactly as it behaved before this package existed: every
// request anonymous, no limits, refs un-namespaced.
package tenant

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultID names the pseudo-tenant that anonymous (keyless) traffic is
// metered under. It is reserved: a tenants file must not define it.
const DefaultID = "anonymous"

// Tenant is one provisioned API customer. The struct is immutable after
// load; mutable runtime state (bucket levels, usage counters) lives in
// the Registry keyed by ID, so a hot reload replaces the config without
// resetting the tenant's in-flight accounting.
type Tenant struct {
	// ID is the stable tenant identifier: it namespaces design refs and
	// labels metrics, so it must be short, unique, and token-safe
	// ([a-z0-9_-], 1..64). Renaming a tenant orphans its stored designs.
	ID string `json:"id"`
	// Name is a free-form display name (optional).
	Name string `json:"name,omitempty"`
	// APIKey is the bearer credential, cleartext in the tenants file
	// (protect the file) but held in memory only as a SHA-256 digest.
	APIKey string `json:"api_key"`
	// RatePerSec is the token-bucket refill rate for this tenant's
	// requests across all endpoints. 0 = unlimited.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity: how many requests may land at once
	// after an idle period. 0 with a positive rate defaults to
	// max(1, ceil(RatePerSec)).
	Burst int `json:"burst,omitempty"`
	// MaxStoreBytes bounds the canonical text bytes this tenant may keep
	// resident in the design registry. 0 = unlimited.
	MaxStoreBytes int64 `json:"max_store_bytes,omitempty"`
	// MaxStoreEntries bounds the tenant's resident design count. 0 =
	// unlimited.
	MaxStoreEntries int64 `json:"max_store_entries,omitempty"`
	// MaxJobBacklog bounds the tenant's queued async jobs. 0 = unlimited
	// (the manager's global backlog still applies).
	MaxJobBacklog int `json:"max_job_backlog,omitempty"`
	// WebhookSecret, when set, signs this tenant's job webhooks instead
	// of the daemon-wide -webhook-secret.
	WebhookSecret string `json:"webhook_secret,omitempty"`

	keyDigest [sha256.Size]byte
}

// File is the on-disk tenants document (see DESIGN.md, "tenants file").
type File struct {
	// AllowAnonymous admits keyless requests alongside keyed ones; they
	// run unlimited in the anonymous namespace. The lwmd -allow-anonymous
	// flag ORs with this.
	AllowAnonymous bool `json:"allow_anonymous,omitempty"`
	// Tenants is the provisioned tenant set.
	Tenants []Tenant `json:"tenants"`
}

// ValidID reports whether id is a legal tenant identifier: 1..64 chars
// of [a-z0-9_-]. The character set matters: IDs ride in WAL record
// headers (whitespace-delimited) and Prometheus label values.
func ValidID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' && c != '-' {
			return false
		}
	}
	return true
}

// snapshot is one immutable parse of the tenants file. Reload swaps the
// whole snapshot atomically, so a request sees either the old or the new
// tenant set, never a mix.
type snapshot struct {
	byDigest       map[[sha256.Size]byte]*Tenant
	byID           map[string]*Tenant
	allowAnonymous bool
}

// Registry is the loaded control plane: authentication, rate limiting,
// and the per-tenant runtime state that persists across hot reloads.
// Safe for concurrent use.
type Registry struct {
	path string
	snap atomic.Pointer[snapshot]

	mu      sync.Mutex
	buckets map[string]*bucket

	reloads atomic.Uint64
}

// Load reads and validates the tenants file at path. Call Reload (e.g.
// from a SIGHUP handler) to pick up edits.
func Load(path string) (*Registry, error) {
	r := &Registry{path: path, buckets: make(map[string]*bucket)}
	if err := r.Reload(); err != nil {
		return nil, err
	}
	return r, nil
}

// parseFile validates a tenants document into a snapshot.
func parseFile(data []byte) (*snapshot, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("tenant: parsing tenants file: %w", err)
	}
	s := &snapshot{
		byDigest:       make(map[[sha256.Size]byte]*Tenant, len(f.Tenants)),
		byID:           make(map[string]*Tenant, len(f.Tenants)),
		allowAnonymous: f.AllowAnonymous,
	}
	for i := range f.Tenants {
		t := f.Tenants[i]
		switch {
		case !ValidID(t.ID):
			return nil, fmt.Errorf("tenant: invalid tenant id %q (want 1..64 chars of [a-z0-9_-])", t.ID)
		case t.ID == DefaultID:
			return nil, fmt.Errorf("tenant: id %q is reserved for keyless traffic", DefaultID)
		case len(t.APIKey) < 8:
			return nil, fmt.Errorf("tenant %s: api_key too short (want at least 8 chars)", t.ID)
		case t.RatePerSec < 0 || t.Burst < 0 || t.MaxStoreBytes < 0 || t.MaxStoreEntries < 0 || t.MaxJobBacklog < 0:
			return nil, fmt.Errorf("tenant %s: negative limit", t.ID)
		}
		if _, dup := s.byID[t.ID]; dup {
			return nil, fmt.Errorf("tenant: duplicate id %q", t.ID)
		}
		t.keyDigest = sha256.Sum256([]byte(t.APIKey))
		t.APIKey = "" // the cleartext key never outlives parsing
		if _, dup := s.byDigest[t.keyDigest]; dup {
			return nil, fmt.Errorf("tenant %s: api_key duplicates another tenant's", t.ID)
		}
		s.byDigest[t.keyDigest] = &t
		s.byID[t.ID] = &t
	}
	return s, nil
}

// Reload re-reads the tenants file and atomically swaps the tenant set.
// On any error the previous set stays live — a bad edit can't lock every
// key out. Buckets of tenants whose rate config is unchanged keep their
// fill level; changed ones start full.
func (r *Registry) Reload() error {
	data, err := os.ReadFile(r.path)
	if err != nil {
		return fmt.Errorf("tenant: %w", err)
	}
	s, err := parseFile(data)
	if err != nil {
		return err
	}
	r.mu.Lock()
	for id, b := range r.buckets {
		t, ok := s.byID[id]
		if !ok || t.RatePerSec != b.rate || t.burstOf() != b.burst {
			delete(r.buckets, id) // rebuilt on next use from the new config
		}
	}
	r.mu.Unlock()
	r.snap.Store(s)
	r.reloads.Add(1)
	return nil
}

// Reloads counts successful Reload calls (including Load's initial one).
func (r *Registry) Reloads() uint64 { return r.reloads.Load() }

// Authenticate resolves an API key to its tenant, or nil when the key is
// unknown (or empty). The comparison is constant-time in the key
// material: the presented key is SHA-256-digested and the digest — a
// fixed-size, attacker-unpredictable value — indexes the tenant map; the
// matched entry is then re-verified with subtle.ConstantTimeCompare so
// the accept path does not branch on digest bytes either.
func (r *Registry) Authenticate(key string) *Tenant {
	if key == "" {
		return nil
	}
	s := r.snap.Load()
	if s == nil {
		return nil
	}
	digest := sha256.Sum256([]byte(key))
	t, ok := s.byDigest[digest]
	if !ok || subtle.ConstantTimeCompare(digest[:], t.keyDigest[:]) != 1 {
		return nil
	}
	return t
}

// ByID resolves a tenant identifier against the current snapshot (nil
// when unknown or revoked). Used by deferred work — async jobs, webhook
// signing — that stored only the ID.
func (r *Registry) ByID(id string) *Tenant {
	if id == "" {
		return nil
	}
	s := r.snap.Load()
	if s == nil {
		return nil
	}
	return s.byID[id]
}

// All returns the current tenant set in unspecified order.
func (r *Registry) All() []*Tenant {
	s := r.snap.Load()
	if s == nil {
		return nil
	}
	out := make([]*Tenant, 0, len(s.byID))
	for _, t := range s.byID {
		out = append(out, t)
	}
	return out
}

// AllowAnonymous reports the tenants file's allow_anonymous setting.
func (r *Registry) AllowAnonymous() bool {
	s := r.snap.Load()
	return s != nil && s.allowAnonymous
}

// Allow spends one request token from the tenant's bucket. ok is false
// when the bucket is dry; retryAfter then says how long until a token
// accrues — the tenant-scoped Retry-After hint, distinct from the
// daemon-wide queue-full backoff. Tenants with no rate limit always
// pass.
func (r *Registry) Allow(t *Tenant, now time.Time) (ok bool, retryAfter time.Duration) {
	if t == nil || t.RatePerSec <= 0 {
		return true, 0
	}
	r.mu.Lock()
	b, exists := r.buckets[t.ID]
	if !exists {
		b = newBucket(t.RatePerSec, t.burstOf(), now)
		r.buckets[t.ID] = b
	}
	ok, retryAfter = b.take(now)
	r.mu.Unlock()
	return ok, retryAfter
}

// burstOf resolves the tenant's effective bucket capacity.
func (t *Tenant) burstOf() int {
	if t.Burst > 0 {
		return t.Burst
	}
	b := int(t.RatePerSec)
	if float64(b) < t.RatePerSec {
		b++
	}
	if b < 1 {
		b = 1
	}
	return b
}
