package main

import (
	"fmt"
	"io"

	"localwm/internal/cdfg"
	"localwm/internal/designs"
	"localwm/internal/prng"
	"localwm/internal/sched"
	"localwm/internal/schedwm"
	"localwm/internal/stats"
	"localwm/internal/tmatch"
	"localwm/internal/tmwm"
)

// Fig3Result holds the exact-enumeration numbers of the scheduling
// motivational example.
type Fig3Result struct {
	Total, WithWM uint64
	Edges         int
	Pc            stats.LogProb
	PairTotal     uint64 // joint placements of one constrained pair
	PairOrdered   uint64 // placements honoring the constraint
}

// runFig3 reproduces the paper's Fig. 3 experiment: mark the fourth-order
// parallel IIR filter's output cone and exhaustively enumerate its
// schedules with and without the watermark constraints (the paper counts
// 166 vs 15, Pc = 15/166, and a 77-vs-10 two-operation sub-example).
func runFig3(w io.Writer, sig prng.Signature) (*Fig3Result, error) {
	full := designs.FourthOrderParallelIIR()
	_, cone := designs.IIRSubtree(full)
	sub, err := full.InducedSubgraph(cone)
	if err != nil {
		return nil, err
	}
	g := sub.Graph
	root := g.MustNode("A7")
	cp, err := g.CriticalPath()
	if err != nil {
		return nil, err
	}
	// Two steps of slack over the critical path: the watermark leaves the
	// spine untouched and the eligible nodes get room to move, so several
	// informative edges can be drawn.
	budget := cp + 2
	// The paper's example assumes T' = T: every subtree node is eligible.
	cfg := schedwm.Config{Tau: 16, K: 5, TauPrime: 2, Epsilon: 0.15, Budget: budget, Root: &root,
		AllEligible: true}
	wm, err := schedwm.Embed(g, sig, cfg)
	if err != nil {
		return nil, err
	}
	withWM, total, err := schedwm.ExactPc(g, budget)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{Total: total, WithWM: withWM, Edges: len(wm.Edges),
		Pc: stats.FromRatio(float64(withWM), float64(total))}

	// Two-operation sub-example: the placements of the first constrained
	// pair across all schedules (paper: 77 ways total, 10 in the enforced
	// order's opposite).
	e := wm.Edges[0]
	aF, bF, same, err := sched.PairOrderCounts(stripTemporal(g), budget, e.From, e.To)
	if err != nil {
		return nil, err
	}
	res.PairTotal = aF + bF + same
	res.PairOrdered = aF

	fmt.Fprintln(w, "Fig. 3 — exact enumeration of IIR subtree schedules")
	fmt.Fprintf(w, "  schedules without constraints: %d   (paper: 166)\n", total)
	fmt.Fprintf(w, "  schedules with %d temporal edges: %d   (paper: 15 with 5 edges)\n",
		res.Edges, withWM)
	fmt.Fprintf(w, "  exact Pc = %d/%d = %.4f = %v   (paper: 15/166 = 0.0904)\n",
		withWM, total, float64(withWM)/float64(total), res.Pc)
	fmt.Fprintf(w, "  pair sub-example %s->%s: %d placements, %d in enforced order   (paper: 77 total, 10 reversed)\n",
		g.Node(e.From).Name, g.Node(e.To).Name, res.PairTotal, res.PairOrdered)
	return res, nil
}

// stripTemporal returns a temporal-edge-free clone.
func stripTemporal(g *cdfg.Graph) *cdfg.Graph {
	c := g.Clone()
	c.ClearTemporalEdges()
	return c
}

// Fig4Result holds the template-matching example numbers.
type Fig4Result struct {
	Enforced  int
	Coverings []uint64 // Solutions(m_i) per enforced matching
	Pc        stats.LogProb
}

// runFig4 reproduces the Fig. 4 experiment: enforce template matchings on
// the IIR filter and count, for each, the number of distinct ways the
// covered nodes could have been matched (the paper counts 6 coverings of
// its enforced 2-adder pair (A5, A6)).
func runFig4(w io.Writer, sig prng.Signature) (*Fig4Result, error) {
	g := designs.FourthOrderParallelIIR()
	lib := tmatch.StandardLibrary()
	cp, err := g.CriticalPath()
	if err != nil {
		return nil, err
	}
	// The paper's figure marks the whole CDFG with multi-op templates; a
	// relaxed 2·C budget makes the adder chains eligible.
	wm, err := tmwm.Embed(g, sig, tmwm.Config{
		Z: 3, Epsilon: 0.2, WholeGraph: true, Lib: lib, Budget: 2 * cp,
	})
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{Enforced: len(wm.Enforced)}
	fmt.Fprintln(w, "Fig. 4 — template-matching watermark on the IIR filter")
	for _, m := range wm.Enforced {
		n, err := tmatch.CountCoverings(g, lib, tmatch.Constraints{}, m.Nodes)
		if err != nil {
			return nil, err
		}
		res.Coverings = append(res.Coverings, n)
		res.Pc = res.Pc.Mul(stats.FromRatio(1, float64(n)))
		names := ""
		for i, v := range m.Nodes {
			if i > 0 {
				names += ","
			}
			names += g.Node(v).Name
		}
		fmt.Fprintf(w, "  enforced %s on (%s): %d alternative coverings   (paper's (A5,A6): 6)\n",
			lib.Templates[m.Template].Name, names, n)
	}
	fmt.Fprintf(w, "  Pc ≈ Π 1/Solutions(m_i) = %v\n", res.Pc)
	return res, nil
}
