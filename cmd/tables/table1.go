package main

import (
	"fmt"
	"io"

	"localwm/internal/designs"
	"localwm/internal/prng"
	"localwm/internal/schedwm"
	"localwm/internal/stats"
	"localwm/internal/vliw"
)

// Table1Result is one measured cell pair of the operation-scheduling
// evaluation.
type Table1Result struct {
	Row       designs.Table1Row
	Ops       int
	PcExp10   [2]float64 // measured log10 Pc at 2% and 5% constrained
	Overhead  [2]float64 // measured cycle overhead (fraction)
	EdgeCount [2]int     // temporal edges actually embedded
}

// table1Fractions are the paper's two operating points: the share of
// operations constrained by watermark temporal edges.
var table1Fractions = [2]float64{0.02, 0.05}

// runTable1 reproduces Table I: for each MediaBench-scale application,
// embed local watermarks until ~f·N temporal edges exist (f = 2%, 5%),
// compute the approximate solution-coincidence probability over the added
// edges, materialize the edges as unit operations, and measure the VLIW
// cycle overhead against the unmarked build.
func runTable1(w io.Writer, sig prng.Signature) ([]Table1Result, error) {
	machine := vliw.Default()
	var out []Table1Result

	fmt.Fprintln(w, "Table I — local watermarking of operation scheduling")
	fmt.Fprintln(w, "(paper values in parentheses; Pc as log10, overhead in %)")
	fmt.Fprintf(w, "%-10s %6s | %14s %18s | %14s %18s\n",
		"app", "ops", "Pc@2%", "overhead@2%", "Pc@5%", "overhead@5%")

	for _, row := range designs.Table1() {
		res := Table1Result{Row: row}
		for fi, f := range table1Fractions {
			g := designs.Layered(row.App.Cfg)
			res.Ops = len(g.Computational())
			cp, err := g.CriticalPath()
			if err != nil {
				return nil, err
			}
			target := int(f * float64(res.Ops))
			cfg := schedwm.Config{
				Tau:      24,
				K:        6,
				TauPrime: 7,
				Epsilon:  0.25,
				Budget:   cp + cp/10 + 2,
				OpWeight: machine.OpWeight(),
				// Keep only informative constraints: each accepted edge
				// contributes at least -log10(0.5) ≈ 0.3 decimal orders of
				// magnitude to the authorship proof.
				MaxOrderProb: 0.5,
			}
			// Embed watermarks until the edge budget is met; each
			// watermark contributes up to K edges.
			need := (target + cfg.K - 1) / cfg.K
			if need < 1 {
				need = 1
			}
			// Ask for extra watermarks to absorb placement failures.
			wms, err := schedwm.EmbedMany(g, sig, cfg, need*3)
			if err != nil {
				return nil, fmt.Errorf("%s @%g: %v", row.App.Name, f, err)
			}
			pc := stats.LogProb(0)
			edges := 0
			var marked []*schedwm.Watermark
			for _, wm := range wms {
				if edges >= target {
					break
				}
				p, err := schedwm.ApproxPc(g, wm, cfg.Budget)
				if err != nil {
					return nil, err
				}
				pc = pc.Mul(p)
				edges += len(wm.Edges)
				marked = append(marked, wm)
			}
			res.PcExp10[fi] = pc.Exponent10()
			res.EdgeCount[fi] = edges

			// Performance overhead: materialize only the counted
			// watermarks as unit operations, then compare cycle counts
			// against a fresh unmarked build.
			baseline := designs.Layered(row.App.Cfg)
			for _, wm := range marked {
				if _, err := schedwm.Materialize(g, wm); err != nil {
					return nil, err
				}
			}
			g.ClearTemporalEdges()
			// The uniform address stream keeps the cache's miss rate
			// insensitive to issue order, so the cycle delta measures the
			// watermark alone. (The realistic streaming model in
			// designs.AddressMap makes baseline and marked runs diverge by
			// ±5% from reference-interleaving luck — see
			// BenchmarkCacheLocality — which would drown the ≤2% signal
			// this table is about.)
			oh, _, _, err := machine.Overhead(baseline, g, nil)
			if err != nil {
				return nil, err
			}
			res.Overhead[fi] = oh
		}
		fmt.Fprintf(w, "%-10s %6d | 10^%-6.0f (10^%-4.0f) %6.1f%% (%4.1f%%) | 10^%-6.0f (10^%-4.0f) %6.1f%% (%4.1f%%)\n",
			row.App.Name, res.Ops,
			res.PcExp10[0], row.PaperPcExp10[0], res.Overhead[0]*100, row.PaperOverheadPct[0],
			res.PcExp10[1], row.PaperPcExp10[1], res.Overhead[1]*100, row.PaperOverheadPct[1])
		out = append(out, res)
	}
	return out, nil
}
