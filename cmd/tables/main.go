// Command tables regenerates every table and figure of the local-
// watermarking paper's evaluation on this repository's substrates:
//
//	tables -table 1        Table I  (operation scheduling: Pc, overhead)
//	tables -table 2        Table II (template matching: module overhead)
//	tables -fig 3          Fig. 3   (exact schedule enumeration, IIR)
//	tables -fig 4          Fig. 4   (template coverings, IIR)
//	tables -analysis tamper  in-text tamper-resistance analysis
//	tables -all            everything above in order
//
// Absolute values depend on the synthetic substrates (see DESIGN.md §3);
// the paper's numbers are printed alongside for shape comparison, and
// EXPERIMENTS.md records both.
package main

import (
	"flag"
	"fmt"
	"os"

	"localwm/internal/prng"
)

func main() {
	table := flag.Int("table", 0, "regenerate Table N (1 or 2)")
	fig := flag.Int("fig", 0, "regenerate Fig. N (3 or 4)")
	analysis := flag.String("analysis", "", "run a named analysis (tamper)")
	all := flag.Bool("all", false, "run everything")
	sigStr := flag.String("sig", "localwm-evaluation-signature", "author signature to embed")
	flag.Parse()

	sig := prng.Signature(*sigStr)
	w := os.Stdout
	ran := false
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "tables: %v\n", err)
		os.Exit(1)
	}

	if *all || *table == 1 {
		ran = true
		if _, err := runTable1(w, sig); err != nil {
			fail(err)
		}
		fmt.Fprintln(w)
	}
	if *all || *table == 2 {
		ran = true
		if _, err := runTable2(w, sig); err != nil {
			fail(err)
		}
		fmt.Fprintln(w)
	}
	if *all || *fig == 3 {
		ran = true
		if _, err := runFig3(w, sig); err != nil {
			fail(err)
		}
		fmt.Fprintln(w)
	}
	if *all || *fig == 4 {
		ran = true
		if _, err := runFig4(w, sig); err != nil {
			fail(err)
		}
		fmt.Fprintln(w)
	}
	if *all || *analysis == "tamper" {
		ran = true
		if err := runTamper(w, sig); err != nil {
			fail(err)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
