package main

import (
	"io"
	"strings"
	"testing"

	"localwm/internal/prng"
)

var testSig = prng.Signature("tables-test-signature")

func TestRunFig3(t *testing.T) {
	res, err := runFig3(io.Discard, testSig)
	if err != nil {
		t.Fatal(err)
	}
	if res.WithWM == 0 || res.WithWM >= res.Total {
		t.Fatalf("enumeration degenerate: %d of %d", res.WithWM, res.Total)
	}
	if res.Edges < 1 {
		t.Fatal("no edges embedded")
	}
	if res.PairTotal == 0 || res.PairOrdered >= res.PairTotal {
		t.Fatalf("pair counts degenerate: %d of %d", res.PairOrdered, res.PairTotal)
	}
	if res.Pc.Exponent10() >= 0 {
		t.Fatalf("Pc = %v", res.Pc)
	}
}

func TestRunFig4(t *testing.T) {
	var sb strings.Builder
	res, err := runFig4(&sb, testSig)
	if err != nil {
		t.Fatal(err)
	}
	if res.Enforced != 3 {
		t.Fatalf("enforced %d, want 3", res.Enforced)
	}
	for _, n := range res.Coverings {
		if n < 1 {
			t.Fatal("zero coverings for an enforced matching")
		}
	}
	if res.Pc.Exponent10() >= 0 {
		t.Fatalf("Pc = %v", res.Pc)
	}
	if !strings.Contains(sb.String(), "alternative coverings") {
		t.Fatal("output missing coverings lines")
	}
}

func TestRunTable2ShapeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("table 2 sweep is slow")
	}
	rows, err := runTable2(io.Discard, testSig)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	tightNotWorse := 0
	for _, r := range rows {
		// Overheads must stay in the low-percent regime.
		for bi := 0; bi < 2; bi++ {
			if r.Overhead[bi] > 0.15 {
				t.Errorf("%s: overhead[%d] = %.1f%% out of regime", r.Row.Name, bi, r.Overhead[bi]*100)
			}
			if r.Base[bi] <= 0 {
				t.Errorf("%s: empty baseline allocation", r.Row.Name)
			}
		}
		if r.Overhead[0] >= r.Overhead[1] {
			tightNotWorse++
		}
	}
	// The tight budget should dominate on a clear majority of designs.
	if tightNotWorse < 5 {
		t.Errorf("tight budget cheaper than relaxed on %d of 8 designs", 8-tightNotWorse)
	}
}

func TestRunTamper(t *testing.T) {
	if testing.Short() {
		t.Skip("tamper sweep is slow")
	}
	var sb strings.Builder
	if err := runTamper(&sb, testSig); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "81") {
		t.Fatalf("analytic example missing from output:\n%s", out)
	}
}

func TestRunTable1ShapeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 sweep is slow")
	}
	rows, err := runTable1(io.Discard, testSig)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.PcExp10[1] >= r.PcExp10[0] {
			t.Errorf("%s: 5%% Pc (%g) not deeper than 2%% (%g)",
				r.Row.App.Name, r.PcExp10[1], r.PcExp10[0])
		}
		for fi := 0; fi < 2; fi++ {
			if r.Overhead[fi] < 0 || r.Overhead[fi] > 0.08 {
				t.Errorf("%s: overhead[%d] = %.1f%% out of regime",
					r.Row.App.Name, fi, r.Overhead[fi]*100)
			}
			if r.EdgeCount[fi] == 0 {
				t.Errorf("%s: no edges embedded at fraction %d", r.Row.App.Name, fi)
			}
		}
	}
}
