package main

import (
	"fmt"
	"io"

	"localwm/internal/attack"
	"localwm/internal/cdfg"
	"localwm/internal/designs"
	"localwm/internal/prng"
	"localwm/internal/sched"
	"localwm/internal/schedwm"
	"localwm/internal/stats"
)

// runTamper reproduces the paper's in-text tamper-resistance analysis two
// ways: the analytic arithmetic of the worked example (100 000 operations,
// 100 watermark pairs, E[ψW/ψN] = ½, target Pc = 10⁻⁶ ⇒ a majority of the
// solution must be altered), and a Monte-Carlo attack on a real marked
// design measuring how much of the schedule random legal tampering must
// disturb before the residual evidence weakens to the same target.
func runTamper(w io.Writer, sig prng.Signature) error {
	fmt.Fprintln(w, "Tamper resistance — analytic worked example (paper §IV-A)")
	ta := stats.TamperAnalysis{PairsWatermarked: 100, PairsTotal: 50000, Ratio: 0.5}
	flips, fraction, err := ta.FlipsNeeded(1e-6)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  watermarked pairs to destroy: %d of 100; expected fraction of the\n", flips)
	fmt.Fprintf(w, "  solution a blind attacker must alter: %.0f%%   (paper: 31729 pairs = 63%%)\n",
		fraction*100)

	fmt.Fprintln(w, "Tamper resistance — Monte-Carlo attack on a marked design")
	g := designs.Layered(designs.MediaBench()[1].Cfg)
	cp, err := g.CriticalPath()
	if err != nil {
		return err
	}
	cfg := schedwm.Config{Tau: 24, K: 6, TauPrime: 7, Epsilon: 0.25, Budget: cp + 8}
	wms, err := schedwm.EmbedMany(g, sig, cfg, 6)
	if err != nil {
		return err
	}
	var edges []cdfg.Edge
	for _, wm := range wms {
		edges = append(edges, wm.Edges...)
	}
	s, err := sched.ListSchedule(g, sched.ListOpts{UseTemporal: true})
	if err != nil {
		return err
	}
	s.Budget += 6 // attacker headroom
	shipped := g.Clone()
	shipped.ClearTemporalEdges()
	bs := prng.MustBitstream([]byte("attacker"))
	pts, err := attack.TamperSweep(shipped, s, edges,
		[]int{0, 100, 500, 2000, 8000, 32000}, bs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %8s %12s %14s %12s\n", "moves", "constraints", "residual Pc", "ops altered")
	for _, p := range pts {
		fmt.Fprintf(w, "  %8d %8d/%-3d %14v %11.0f%%\n",
			p.Moves, p.Satisfied, p.Total, p.ResidualPc, p.AlteredPct*100)
	}
	return nil
}
