package main

import (
	"fmt"
	"io"

	"localwm/internal/designs"
	"localwm/internal/prng"
	"localwm/internal/tmatch"
	"localwm/internal/tmwm"
)

// Table2Result is one measured row of the template-matching evaluation.
// Overheads are averaged over table2Runs independent signatures (the
// protocol's cost is a random variable of the signature; the paper reports
// a single number per cell, which on designs this small implies the
// authors' flow averaged or the overhead was deterministic for them).
type Table2Result struct {
	Row      designs.Table2Row
	Ops      int
	CP       int
	EnfPct   float64    // mean share of modules enforced by the watermark
	Overhead [2]float64 // mean module-count overhead at the two budgets
	Base     [2]float64 // mean baseline module count
	Marked   [2]float64 // mean watermarked module count
	PcExp10  float64    // mean log10 Pc
}

const table2Runs = 8

// runTable2 reproduces Table II: for each design, cover the CDFG with the
// standard template library with and without the watermark's enforced
// matchings + PPO constraints, allocate module instances (functional units
// plus registers) at two control-step budgets — the tight budget and twice
// that — and report the module-count overhead.
func runTable2(w io.Writer, sig prng.Signature) ([]Table2Result, error) {
	lib := tmatch.StandardLibrary()
	var out []Table2Result

	fmt.Fprintln(w, "Table II — local watermarking of template matching")
	fmt.Fprintf(w, "(paper values in parentheses; mean of %d signatures;\n", table2Runs)
	fmt.Fprintln(w, " paper quotes Pc in the range 10^-5 .. 10^-27 across these designs)")
	fmt.Fprintf(w, "%-22s %5s %6s %6s %8s | %22s | %22s\n",
		"design", "ops", "steps", "%enf", "Pc", "overhead@B", "overhead@2B")

	for _, row := range designs.Table2() {
		g := row.Build()
		cp, err := g.CriticalPath()
		if err != nil {
			return nil, err
		}
		tight := cp
		if row.StepsPerOp > 0 {
			tight = int(row.StepsPerOp * float64(len(g.Computational())))
		}
		res := Table2Result{Row: row, Ops: len(g.Computational()), CP: tight}

		base, err := tmatch.GreedyCover(g, lib, tmatch.Constraints{}, nil)
		if err != nil {
			return nil, fmt.Errorf("%s: baseline cover: %v", row.Name, err)
		}
		// Z = paper's enforcement percentage of the baseline module count
		// (column 5 quantifies "the percentage of templates enforced").
		z := int(row.PaperEnfPct / 100 * float64(len(base.Matchings)))
		if z < 1 {
			z = 1
		}

		// The paper's two rows per design are two experiments, each run at
		// its own available-steps setting: the watermark is embedded under
		// that budget's laxity rule and the allocation measured there.
		for run := 0; run < table2Runs; run++ {
			runSig := append(append(prng.Signature{}, sig...),
				[]byte(fmt.Sprintf("/t2/%d", run))...)
			for bi, budget := range [2]int{tight, 2 * tight} {
				wm, err := tmwm.Embed(g, runSig, tmwm.Config{
					Z: z, Epsilon: 0.25, WholeGraph: true, Lib: lib, Budget: budget,
				})
				if err != nil {
					return nil, fmt.Errorf("%s: embed @%d: %v", row.Name, budget, err)
				}
				enforced, cons := wm.Constraints()
				marked, err := tmatch.GreedyCover(g, lib, cons, enforced)
				if err != nil {
					return nil, fmt.Errorf("%s: marked cover: %v", row.Name, err)
				}
				if bi == 0 {
					res.EnfPct += float64(len(enforced)) / float64(len(marked.Matchings)) * 100 / table2Runs
					pc, err := tmwm.ApproxPc(g, lib, wm)
					if err != nil {
						return nil, err
					}
					res.PcExp10 += pc.Exponent10() / table2Runs
				}
				ba, err := tmatch.Allocate(g, lib, base, budget, nil)
				if err != nil {
					return nil, fmt.Errorf("%s: baseline alloc @%d: %v", row.Name, budget, err)
				}
				ma, err := tmatch.Allocate(g, lib, marked, budget, wm.PPO)
				if err != nil {
					return nil, fmt.Errorf("%s: marked alloc @%d: %v", row.Name, budget, err)
				}
				res.Base[bi] += float64(ba.Modules) / table2Runs
				res.Marked[bi] += float64(ma.Modules) / table2Runs
				if ba.Modules > 0 {
					res.Overhead[bi] += float64(ma.Modules-ba.Modules) / float64(ba.Modules) / table2Runs
				}
			}
		}
		fmt.Fprintf(w, "%-22s %5d %6d %5.1f%% 10^%-5.1f | %5.1f->%-6.1f %5.1f%% (%4.1f%%) | %5.1f->%-6.1f %5.1f%% (%4.1f%%)\n",
			row.Name, res.Ops, tight, res.EnfPct, res.PcExp10,
			res.Base[0], res.Marked[0], res.Overhead[0]*100, row.PaperOverhead[0],
			res.Base[1], res.Marked[1], res.Overhead[1]*100, row.PaperOverhead[1])
		out = append(out, res)
	}
	return out, nil
}
