// Command lwmd is the local-watermarking service daemon: the engine
// behind cmd/lwm exposed as a long-running HTTP service.
//
//	lwmd -addr :8077 [-debug-addr 127.0.0.1:8078] [flags]
//
// Endpoints (POST, JSON; designs in the cdfg text format, schedules in
// the lwm schedule text format):
//
//	/v1/embed    embed scheduling watermarks into a design
//	/v1/detect   batch-scan suspects×records for memorized watermarks
//	/v1/verify   adjudicate an ownership claim from a signature alone
//	/v1/designs  content-addressed design registry (PUT to register,
//	             GET /v1/designs/{ref} to fetch); embed/detect/verify
//	             accept "design_ref" in place of inline "design"
//	/v1/jobs     async jobs: POST submits an embed/detect/verify payload
//	             to the durable job queue; GET /v1/jobs/{id} reads status
//	             (?wait= long-polls), /v1/jobs/{id}/result returns the
//	             stored response byte-identical to the sync endpoint's,
//	             /v1/jobs/{id}/events streams transitions as SSE. With
//	             -jobs-dir, jobs survive restarts — even SIGKILL — via a
//	             write-ahead log; failed attempts retry under capped
//	             full-jitter backoff, and -webhook-secret signs the
//	             terminal-status push a job's webhook_url receives.
//	/v1/robustness
//	             run a seeded attack campaign against a re-marked design
//	             and answer the structured survival report. Campaigns up
//	             to -robust-sync-units attack units run inline; larger
//	             (or "async": true) ones are queued as durable jobs and
//	             answered with the job status — the stored result is the
//	             same envelope the synchronous path answers, byte for
//	             byte.
//	/v1/traces   flight recorder (GET; requires -trace-retain): list
//	             retained traces with endpoint/result/reason/min_duration
//	             filters, GET /v1/traces/{id} for one trace's full span
//	             tree, stage timings, and engine counter deltas
//	/v1/profiles profiling observatory (GET; requires -prof-dir): list
//	             resident pprof snapshots, GET /v1/profiles/{name} for
//	             raw pprof bytes (`go tool pprof` or `lwm prof`)
//	/v1/stats    metrics snapshot (also on the debug port)
//	/metrics     Prometheus text exposition (also on the debug port)
//	/healthz     liveness (503 while draining)
//
// The design registry caches parsed graphs with warmed longest-path
// oracles, so repeat requests against a registered design skip parsing
// and oracle warmup entirely. It is bounded (-store-capacity, LRU
// eviction) and optionally persistent: with -store-dir the registry
// journals puts to an append-only WAL with snapshot compaction and
// replays it on startup, so references survive daemon restarts.
//
// Observability: every API request emits one structured log line
// (-log-format text|json, -log-level debug|info|warn|error) carrying the
// request's trace ID — adopted from the client's X-Lwm-Trace-Id header
// or minted — plus status, result, and queue-wait/run/engine stage
// timings. GET /metrics serves the same counters as fixed-bucket
// Prometheus histograms and counters for scraping; /debug/vars keeps the
// expvar snapshot for dashboards.
//
// Flight recorder (-trace-retain N): completed requests become span-tree
// trace entries in a bounded in-memory ring under tail-based sampling —
// every error/timeout/rejection is kept, the slowest N per endpoint per
// rolling window are kept, and the unremarkable rest is sampled at
// -trace-sample. Retained traces are served on /v1/traces, and duration
// histogram buckets on /metrics carry exemplars naming a retained trace
// ID, so a latency spike on a dashboard links straight to a concrete
// trace. On a tenanted daemon the listing and lookups are scoped to the
// calling tenant. Disabled (the default), the recorder costs nothing.
//
// Profiling observatory (-prof-dir DIR): the daemon captures CPU, heap,
// and allocs pprof snapshots into DIR — periodically with -prof-interval,
// and on demand when an endpoint breaches -slo-ms with its rolling p99
// above the SLO (debounced). Retention keeps the newest -prof-retain
// snapshots per kind. Snapshots are listed and fetched on /v1/profiles;
// `lwm prof` lists, fetches, and diffs them without external tooling.
//
// Robustness: each endpoint runs behind a bounded admission queue with a
// fixed worker pool; a full queue answers 429 with Retry-After, a request
// whose deadline expires while queued answers 504, and a panic is
// confined to its request (500). SIGINT/SIGTERM starts a graceful drain:
// new work is rejected with 503 while queued and in-flight requests
// finish, then the listener closes.
//
// Multi-tenancy: -tenants-file names a JSON file of tenants and their
// API keys; with it set, every /v1 request authenticates via the
// X-Lwm-Api-Key header (or an Authorization: Bearer token) and runs
// under its tenant's rate limit, store quota, and job-backlog bound,
// with designs namespaced per tenant. SIGHUP re-reads the file without
// a restart — keys can be added or revoked live. -allow-anonymous (or
// "allow_anonymous" in the file) keeps admitting keyless requests
// alongside keyed ones; without a tenants file the daemon behaves
// exactly as before.
//
// The debug port (loopback by default; never expose it) serves expvar at
// /debug/vars, the lwmd metrics snapshot at /debug/lwmd, and net/http/
// pprof under /debug/pprof/.
//
// -chaos (testing only, off by default) routes the /v1 API through the
// internal/chaos fault injector: seeded, deterministic latency,
// connection resets, 500s, and truncated bodies, counted on the metrics
// snapshot. It exists to exercise the resilient client (lwmclient); the
// daemon's responses with -chaos off are byte-identical to a build
// without the chaos layer.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"localwm/internal/chaos"
	"localwm/internal/jobs"
	"localwm/internal/obs"
	"localwm/internal/obs/profiler"
	"localwm/internal/obs/recorder"
	"localwm/internal/server"
	"localwm/internal/store"
	"localwm/internal/tenant"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "lwmd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lwmd", flag.ExitOnError)
	addr := fs.String("addr", ":8077", "service listen address")
	debugAddr := fs.String("debug-addr", "", "debug listen address for expvar/pprof (empty: disabled; keep loopback-only)")
	queueSize := fs.Int("queue", 64, "per-endpoint pending-request capacity")
	embedWorkers := fs.Int("embed-workers", 2, "concurrent embed requests")
	detectWorkers := fs.Int("detect-workers", runtime.NumCPU(), "concurrent detect requests")
	verifyWorkers := fs.Int("verify-workers", 2, "concurrent verify requests")
	engineWorkers := fs.Int("engine-workers", runtime.NumCPU(), "default engine parallelism per request")
	maxEngineWorkers := fs.Int("max-engine-workers", 4*runtime.NumCPU(), "cap on request-supplied engine parallelism")
	timeout := fs.Duration("timeout", 60*time.Second, "per-request deadline (queue wait + execution)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to finish in-flight work on shutdown")
	designWorkers := fs.Int("design-workers", 2, "concurrent design-registry requests")
	storeDir := fs.String("store-dir", "", "design-registry persistence directory (empty: in-memory only)")
	storeCapacity := fs.Int("store-capacity", 0, "design-registry entries before LRU eviction (0: default 1024)")
	jobsDir := fs.String("jobs-dir", "", "async-job persistence directory (empty: in-memory only, jobs die with the daemon)")
	jobsWorkers := fs.Int("jobs-workers", 2, "concurrent async-job executions")
	robustWorkers := fs.Int("robust-workers", 2, "concurrent synchronous robustness campaigns")
	robustSyncUnits := fs.Int("robust-sync-units", 32, "largest campaign (attack units) answered synchronously; bigger ones queue as jobs (negative: queue everything)")
	jobsMaxAttempts := fs.Int("jobs-max-attempts", 0, "default per-job retry budget (0: default 3)")
	webhookSecret := fs.String("webhook-secret", "", "HMAC key for signing job-completion webhooks (empty: deliveries unsigned)")
	tenantsFile := fs.String("tenants-file", "", "JSON tenants file enabling the API-key control plane (empty: single-tenant, no auth); SIGHUP re-reads it")
	allowAnonymous := fs.Bool("allow-anonymous", false, "with -tenants-file, keep admitting keyless requests alongside keyed ones")
	traceRetain := fs.Int("trace-retain", 0, "flight-recorder capacity: completed traces retained by tail sampling (0: recorder disabled)")
	traceSample := fs.Float64("trace-sample", 0.05, "probability an unremarkable (non-error, non-slow) trace is retained")
	profDir := fs.String("prof-dir", "", "pprof snapshot directory enabling the profiling observatory (empty: disabled)")
	profInterval := fs.Duration("prof-interval", 0, "periodic cpu/heap/allocs capture interval (0: on-demand captures only)")
	profRetain := fs.Int("prof-retain", 4, "pprof snapshots kept per kind before pruning")
	sloMS := fs.Int("slo-ms", 0, "per-endpoint latency SLO in milliseconds; a breach with rolling p99 over it triggers a profile capture (0: disabled)")
	chaosOn := fs.Bool("chaos", false, "inject seeded transport faults into the /v1 API (testing only, never production)")
	chaosSeed := fs.Int64("chaos-seed", 1, "fault-injection seed; a given seed and request order replays the same faults")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, or error")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		return err
	}

	var reg *tenant.Registry
	if *tenantsFile != "" {
		reg, err = tenant.Load(*tenantsFile)
		if err != nil {
			return fmt.Errorf("loading tenants file: %w", err)
		}
		logger.Info("tenant control plane enabled", "file", *tenantsFile,
			"tenants", len(reg.All()), "allow_anonymous", *allowAnonymous || reg.AllowAnonymous())
	}

	st, err := store.Open(store.Config{Dir: *storeDir, Capacity: *storeCapacity})
	if err != nil {
		return fmt.Errorf("opening design registry: %w", err)
	}
	defer st.Close()
	if *storeDir != "" {
		logger.Info("design registry persistent", "dir", *storeDir, "entries", st.Len())
	}

	jcfg := jobs.Config{
		Dir:                *jobsDir,
		Workers:            *jobsWorkers,
		DefaultMaxAttempts: *jobsMaxAttempts,
		Webhook:            jobs.WebhookConfig{Secret: *webhookSecret},
		Logger:             logger,
	}
	if reg != nil {
		jcfg.SecretFor = func(id string) string {
			if t := reg.ByID(id); t != nil {
				return t.WebhookSecret
			}
			return ""
		}
	}
	jm, err := jobs.Open(jcfg)
	if err != nil {
		return fmt.Errorf("opening job store: %w", err)
	}
	if *jobsDir != "" {
		jc := jm.Counters()
		logger.Info("job store persistent", "dir", *jobsDir,
			"resident", jc.Jobs, "requeued", jc.Queued)
	}

	cfg := server.Config{
		EmbedWorkers:     *embedWorkers,
		DetectWorkers:    *detectWorkers,
		VerifyWorkers:    *verifyWorkers,
		DesignWorkers:    *designWorkers,
		RobustWorkers:    *robustWorkers,
		RobustSyncUnits:  *robustSyncUnits,
		QueueSize:        *queueSize,
		EngineWorkers:    *engineWorkers,
		MaxEngineWorkers: *maxEngineWorkers,
		RequestTimeout:   *timeout,
		Logger:           logger,
		Store:            st,
		Jobs:             jm,
		Tenants:          reg,
		AllowAnonymous:   *allowAnonymous,
		SLO:              time.Duration(*sloMS) * time.Millisecond,
	}
	if *traceRetain > 0 {
		cfg.Recorder = recorder.New(recorder.Config{
			Capacity:   *traceRetain,
			SampleRate: *traceSample,
			Seed:       time.Now().UnixNano(), // tests pin seeds; production wants variety
		})
		logger.Info("flight recorder enabled", "retain", *traceRetain, "sample", *traceSample)
	}
	var prof *profiler.Profiler
	if *profDir != "" {
		prof, err = profiler.New(profiler.Config{
			Dir:      *profDir,
			Interval: *profInterval,
			Retain:   *profRetain,
			Logger:   logger,
		})
		if err != nil {
			return fmt.Errorf("opening profile directory: %w", err)
		}
		cfg.Profiler = prof
		logger.Info("profiling observatory enabled", "dir", *profDir,
			"interval", profInterval.String(), "retain", *profRetain)
	}
	if *chaosOn {
		ccfg := chaos.Default(*chaosSeed)
		ccfg.Logger = logger
		cfg.Chaos = chaos.New(ccfg)
		logger.Warn("CHAOS MODE: injecting seeded faults into /v1 — never run this in production",
			"seed", *chaosSeed)
	}
	srv := server.New(cfg)
	srv.Publish() // expose the metrics snapshot as the expvar "lwmd"
	prof.Start()  // periodic capture loop; no-op when nil or -prof-interval is 0

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Header/read/idle timeouts bound connection lifetimes: without them
	// a slowloris client that trickles header bytes (or never finishes a
	// body) holds its connection — and eventually a worker goroutine —
	// forever. Reads get the request deadline plus slack for the body of
	// a legitimately slow uploader; writes stay unbounded because
	// drained responses may legitimately outlive the request deadline.
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *timeout + 30*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	logger.Info("serving", "addr", ln.Addr().String())

	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			ln.Close()
			return err
		}
		debugSrv = &http.Server{
			Handler:           srv.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		logger.Info("debug (expvar/pprof) serving", "addr", dln.Addr().String())
		go func() {
			if err := debugSrv.Serve(dln); err != nil && err != http.ErrServerClosed {
				logger.Error("debug server", "err", err)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// SIGHUP hot-reloads the tenants file: keys appear/vanish for the
	// very next request, no restart, no dropped connections. A reload
	// that fails to parse keeps serving the previous tenant set.
	if reg != nil {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if err := reg.Reload(); err != nil {
					logger.Error("tenants reload failed, keeping previous set", "err", err)
					continue
				}
				logger.Info("tenants reloaded", "file", *tenantsFile, "tenants", len(reg.All()))
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case got := <-sig:
		logger.Info("draining (in-flight requests finish, new ones get 503)", "signal", got.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Error("drain", "err", err)
	}
	// Close the job manager after the HTTP drain: running job attempts
	// finish within the drain budget, queued jobs stay durable in the WAL
	// (picked up by the next start with the same -jobs-dir).
	if err := jm.Close(ctx); err != nil {
		logger.Error("job drain", "err", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("closing listener: %w", err)
	}
	if debugSrv != nil {
		_ = debugSrv.Shutdown(ctx)
	}
	prof.Close() // stop the capture loop and wait out an in-flight cycle
	logger.Info("drained, bye")
	return nil
}
