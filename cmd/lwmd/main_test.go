package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	"localwm/internal/cdfg"
	"localwm/internal/designs"
)

// freePort reserves then releases a loopback port. The tiny window
// before run() rebinds it is acceptable for a test.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDaemonServesAndDrainsOnSIGTERM boots the real daemon — flags,
// listeners, signal handling — serves one embed request, then delivers
// an actual SIGTERM to the process and requires a clean, error-free
// drain.
func TestDaemonServesAndDrainsOnSIGTERM(t *testing.T) {
	addr := freePort(t)
	debugAddr := freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-debug-addr", debugAddr,
			"-drain-timeout", "10s"})
	}()

	base := "http://" + addr
	var resp *http.Response
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err = http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	var design bytes.Buffer
	if err := cdfg.Write(&design, designs.DAConverter()); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{
		"design": design.String(), "signature": "daemon-test",
		"n": 2, "tau": 16, "k": 3, "epsilon": 0.4,
	})
	er, err := http.Post(base+"/v1/embed", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var embed struct {
		Watermarks int `json:"watermarks"`
	}
	if err := json.NewDecoder(er.Body).Decode(&embed); err != nil {
		t.Fatal(err)
	}
	er.Body.Close()
	if er.StatusCode != http.StatusOK || embed.Watermarks != 2 {
		t.Fatalf("embed: status %d, watermarks %d", er.StatusCode, embed.Watermarks)
	}

	dr, err := http.Get("http://" + debugAddr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Lwmd map[string]any `json:"lwmd"`
	}
	if err := json.NewDecoder(dr.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if vars.Lwmd == nil {
		t.Fatal("expvar \"lwmd\" not published on the debug port")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

// TestDaemonStoreDirSurvivesRestart: with -store-dir, a registered
// design's reference resolves again after a full daemon stop/start (WAL
// replay), the replayed entry actually computes (embed by ref), and the
// store counters restart cold — the WAL persists designs, not stats.
func TestDaemonStoreDirSurvivesRestart(t *testing.T) {
	storeDir := t.TempDir()

	var design bytes.Buffer
	if err := cdfg.Write(&design, designs.DAConverter()); err != nil {
		t.Fatal(err)
	}

	boot := func() (string, chan error) {
		addr := freePort(t)
		done := make(chan error, 1)
		go func() {
			done <- run([]string{"-addr", addr, "-store-dir", storeDir, "-drain-timeout", "5s"})
		}()
		base := "http://" + addr
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				resp.Body.Close()
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("daemon never came up: %v", err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		return base, done
	}
	stop := func(done chan error) {
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon exited with %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not drain after SIGTERM")
		}
	}
	storeStats := func(base string) map[string]float64 {
		sr, err := http.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer sr.Body.Close()
		var snap struct {
			Store map[string]float64 `json:"store"`
		}
		if err := json.NewDecoder(sr.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		if snap.Store == nil {
			t.Fatal("stats snapshot has no store section")
		}
		return snap.Store
	}

	base, done := boot()
	body, _ := json.Marshal(map[string]string{"design": design.String()})
	preq, err := http.NewRequest(http.MethodPut, base+"/v1/designs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	var put struct {
		Ref string `json:"ref"`
	}
	if err := json.NewDecoder(pr.Body).Decode(&put); err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK || len(put.Ref) != 64 {
		t.Fatalf("put: status %d, ref %q", pr.StatusCode, put.Ref)
	}
	if st := storeStats(base); st["puts"] != 1 {
		t.Fatalf("first life store stats: %v", st)
	}
	stop(done)

	// Second life, same -store-dir: the ref must resolve from the WAL.
	base, done = boot()
	st := storeStats(base)
	if st["entries"] != 1 {
		t.Fatalf("WAL replay lost the design: %v", st)
	}
	if st["puts"] != 0 || st["hits"] != 0 || st["misses"] != 0 {
		t.Fatalf("store counters not cold after restart: %v", st)
	}
	gr, err := http.Get(base + "/v1/designs/" + put.Ref)
	if err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if gr.StatusCode != http.StatusOK {
		t.Fatalf("ref did not resolve after restart: %d", gr.StatusCode)
	}
	ebody, _ := json.Marshal(map[string]any{
		"design_ref": put.Ref, "signature": "restart-test",
		"n": 2, "tau": 16, "k": 3, "epsilon": 0.4,
	})
	er, err := http.Post(base+"/v1/embed", "application/json", bytes.NewReader(ebody))
	if err != nil {
		t.Fatal(err)
	}
	var embed struct {
		Watermarks int `json:"watermarks"`
	}
	if err := json.NewDecoder(er.Body).Decode(&embed); err != nil {
		t.Fatal(err)
	}
	er.Body.Close()
	if er.StatusCode != http.StatusOK || embed.Watermarks != 2 {
		t.Fatalf("embed by replayed ref: status %d, watermarks %d", er.StatusCode, embed.Watermarks)
	}
	if st := storeStats(base); st["hits"] < 1 {
		t.Fatalf("replayed entry not serving hits: %v", st)
	}
	stop(done)
}

func TestDaemonRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-addr", "not-an-address"}); err == nil {
		t.Fatal("bad -addr accepted")
	}
	if err := run([]string{"-addr", "127.0.0.1:0", "-debug-addr", "bogus:addr:99"}); err == nil {
		t.Fatal("bad -debug-addr accepted")
	}
}

// TestDaemonChaosFlag boots the daemon with -chaos and requires the
// fault injector to be wired in: the /v1/stats snapshot carries the
// chaos counters (absent by default — the zero-flag path must stay
// byte-identical to a build without the chaos layer).
func TestDaemonChaosFlag(t *testing.T) {
	for _, chaosOn := range []bool{false, true} {
		addr := freePort(t)
		args := []string{"-addr", addr, "-drain-timeout", "5s"}
		if chaosOn {
			args = append(args, "-chaos", "-chaos-seed", "7")
		}
		done := make(chan error, 1)
		go func() { done <- run(args) }()

		base := "http://" + addr
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				resp.Body.Close()
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("daemon never came up: %v", err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		sr, err := http.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		var snap map[string]any
		if err := json.NewDecoder(sr.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		sr.Body.Close()
		if _, ok := snap["chaos"]; ok != chaosOn {
			t.Fatalf("-chaos=%v but snapshot chaos key present=%v", chaosOn, ok)
		}
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon exited with %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not drain after SIGTERM")
		}
	}
}
