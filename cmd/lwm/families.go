// Family mode: embed, detect, and verify accept -family {sched|tmwm|
// gcolor} and then drive the family's protocol — in-process through the
// same internal/family registry the daemon dispatches on, or remotely
// with the family field on every envelope. Both paths shape and print
// through the same helpers below, so local and remote runs are
// byte-identical on stdout for every family, exactly as they are for the
// scheduling family's dedicated paths.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"localwm/internal/family"
	"localwm/internal/gcolor"
	"localwm/lwmapi"
	"localwm/lwmclient"
)

// genGcolor writes a deterministic random graph-coloring instance: the
// seed keys the generator, so the same invocation always writes the
// same graph.
func genGcolor(seed string, nodes, density int, out string) error {
	if seed == "" {
		return fmt.Errorf("gen: -family gcolor needs -design <seed>")
	}
	if density < 0 || density > 100 {
		return fmt.Errorf("gen: -density must be a percentage, got %d", density)
	}
	g, err := gcolor.RandomGraph(seed, nodes, density, 100)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return gcolor.WriteGraph(w, g)
}

// familyFlag registers -family on a marking subcommand.
func familyFlag(fs *flag.FlagSet) *string {
	return fs.String("family", "", "watermark family: sched, tmwm, or gcolor (empty: sched; see lwm families)")
}

// markParamsFrom builds family-mode MarkParams from only the flags the
// user actually set, leaving the rest zero for the family's Normalize to
// default — the flag defaults (n=2, τ=20, …) are the scheduling
// family's and must not leak into other families.
func markParamsFrom(fs *flag.FlagSet, n, tau, k *int, eps *float64, budget, workers *int) lwmapi.MarkParams {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	var p lwmapi.MarkParams
	if set["n"] {
		p.N = *n
	}
	if set["tau"] {
		p.Tau = *tau
	}
	if set["k"] {
		p.K = *k
	}
	if set["epsilon"] {
		p.Epsilon = *eps
	}
	if set["budget"] {
		p.Budget = *budget
	}
	if workers != nil && set["workers"] {
		p.Workers = *workers
	}
	return p
}

// cmdFamilies lists the watermark families with their defaults and
// capability flags: the local registry, or with -remote the daemon's
// GET /v1/families answer. The two listings are identical for a daemon
// of this build — the daemon serves the same registry.
func cmdFamilies(args []string) error {
	fs := flag.NewFlagSet("families", flag.ExitOnError)
	remote := fs.String("remote", "", "lwmd daemon address (empty: list the built-in registry)")
	apiKeyFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp := &lwmapi.ListFamiliesResponse{Default: lwmapi.FamilySched, Families: family.Infos()}
	if *remote != "" {
		c, err := newRemoteClient(*remote)
		if err != nil {
			return err
		}
		resp, err = c.ListFamilies(context.Background())
		if err != nil {
			return err
		}
	}
	for _, fi := range resp.Families {
		def := ""
		if fi.Name == resp.Default {
			def = " (default)"
		}
		fmt.Printf("%s%s: %s\n", fi.Name, def, fi.Description)
		d := fi.Defaults
		fmt.Printf("  defaults: n=%d tau=%d k=%d epsilon=%g budget=%d\n",
			d.N, d.Tau, d.K, d.Epsilon, d.Budget)
		c := fi.Capabilities
		fmt.Printf("  capabilities: batch=%t robustness=%t registry=%t\n",
			c.Batch, c.Robustness, c.Registry)
	}
	return nil
}

// readDesignText loads the inline design text unless a registry
// reference stands in for it (remote only, checked by checkRefFlag).
func readDesignText(in, ref string) (string, error) {
	if ref != "" {
		return "", nil
	}
	data, err := os.ReadFile(in)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// familyEmbed runs one non-scheduling embed, locally through the
// protocol registry or against a daemon, and prints/writes the shared
// report: marked design to out, marked solution to solPath, detection
// records (family-labeled) to recPath.
func familyEmbed(ctx context.Context, fam, remote, in, ref, sig string, params lwmapi.MarkParams, out, solPath, recPath string) error {
	var resp *lwmapi.EmbedResponse
	if remote != "" {
		c, err := newRemoteClient(remote)
		if err != nil {
			return err
		}
		design, err := readDesignText(in, ref)
		if err != nil {
			return err
		}
		resp, err = c.Embed(ctx, lwmclient.EmbedRequest{
			Family: fam, Design: design, DesignRef: ref, Signature: sig, MarkParams: params,
		})
		if err != nil {
			return err
		}
	} else {
		proto, err := family.Lookup(fam)
		if err != nil {
			return err
		}
		proto.Normalize(&params)
		text, err := readDesignText(in, ref)
		if err != nil {
			return err
		}
		d, err := proto.ParseDesign(text)
		if err != nil {
			return fmt.Errorf("design: %v", err)
		}
		workers := params.Workers
		if workers <= 0 {
			workers = 1
		}
		resp, err = proto.Embed(ctx, d, sig, params, workers)
		if err != nil {
			return err
		}
	}
	fmt.Printf("embedded %d watermarks, %d constraints\n", resp.Watermarks, resp.TemporalEdges)
	if out != "" {
		if err := os.WriteFile(out, []byte(resp.MarkedDesign), 0o644); err != nil {
			return err
		}
	}
	if solPath != "" {
		if err := os.WriteFile(solPath, []byte(resp.MarkedSolution), 0o644); err != nil {
			return err
		}
	}
	if recPath != "" {
		rf := recordFile{Signature: []byte(sig), Family: fam, Records: resp.Records}
		data, err := json.MarshalIndent(rf, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(recPath, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// printDetectOutcomes renders one suspect's outcome row exactly as the
// scheduling detect paths do, returning the found count.
func printDetectOutcomes(outs []lwmapi.DetectOutcome) (int, error) {
	found := 0
	for i, out := range outs {
		if out.Error != "" {
			return 0, fmt.Errorf("%s", out.Error)
		}
		if out.Found {
			found++
			fmt.Printf("watermark %d: FOUND at root %s (%d constraints, Pc %s)\n",
				i, out.Root, out.Total, out.Pc)
		} else {
			fmt.Printf("watermark %d: not found (best %d/%d)\n",
				i, out.Satisfied, out.Total)
		}
	}
	return found, nil
}

// familyDetect runs one non-scheduling detect: the suspect design plus
// its solution (the -schedule file: a template cover for tmwm, a
// coloring for gcolor) scanned for the record file's watermarks. The
// record file must be labeled with the same family.
func familyDetect(ctx context.Context, fam, remote, in, ref, solPath, recPath string, workers int) error {
	data, err := os.ReadFile(recPath)
	if err != nil {
		return err
	}
	var rf recordFile
	if err := json.Unmarshal(data, &rf); err != nil {
		return err
	}
	if got := lwmapi.CanonicalFamily(rf.Family); got != fam {
		return fmt.Errorf("record file is for family %q, not %q", got, fam)
	}
	solText, err := os.ReadFile(solPath)
	if err != nil {
		return err
	}
	var outs []lwmapi.DetectOutcome
	if remote != "" {
		c, err := newRemoteClient(remote)
		if err != nil {
			return err
		}
		design, err := readDesignText(in, ref)
		if err != nil {
			return err
		}
		res, err := c.Detect(ctx, lwmclient.DetectRequest{
			Family:   fam,
			Suspects: []lwmclient.Suspect{{Design: design, DesignRef: ref, Schedule: string(solText)}},
			Records:  rf.Records,
			Workers:  workers,
		})
		if err != nil {
			return err
		}
		if !res.Complete() {
			return res.Failed[0]
		}
		outs = res.Results[0]
	} else {
		proto, err := family.Lookup(fam)
		if err != nil {
			return err
		}
		text, err := readDesignText(in, ref)
		if err != nil {
			return err
		}
		d, err := proto.ParseDesign(text)
		if err != nil {
			return fmt.Errorf("design: %v", err)
		}
		sol, err := proto.ParseSolution(d, string(solText))
		if err != nil {
			return fmt.Errorf("schedule: %v", err)
		}
		resp, err := proto.Detect(ctx, []family.Suspect{{Design: d, Solution: sol}}, rf.Records, workers)
		if err != nil {
			return err
		}
		outs = resp.Results[0]
	}
	found, err := printDetectOutcomes(outs)
	if err != nil {
		return err
	}
	fmt.Printf("%d of %d watermarks detected\n", found, len(rf.Records))
	if found == 0 {
		flushTrace(ctx)
		os.Exit(3)
	}
	return nil
}

// familyVerify adjudicates one non-scheduling ownership claim from the
// claimed signature alone, printing the same claim report and honoring
// the same exit-3-on-unverified contract as the scheduling paths.
func familyVerify(ctx context.Context, fam, remote, in, ref, solPath, sig string, params lwmapi.MarkParams) error {
	solText, err := os.ReadFile(solPath)
	if err != nil {
		return err
	}
	var resp *lwmapi.VerifyResponse
	if remote != "" {
		c, err := newRemoteClient(remote)
		if err != nil {
			return err
		}
		design, err := readDesignText(in, ref)
		if err != nil {
			return err
		}
		resp, err = c.Verify(ctx, lwmclient.VerifyRequest{
			Family: fam, Design: design, DesignRef: ref,
			Schedule: string(solText), Signature: sig, MarkParams: params,
		})
		if err != nil {
			return err
		}
	} else {
		proto, err := family.Lookup(fam)
		if err != nil {
			return err
		}
		proto.Normalize(&params)
		text, err := readDesignText(in, ref)
		if err != nil {
			return err
		}
		d, err := proto.ParseDesign(text)
		if err != nil {
			return fmt.Errorf("design: %v", err)
		}
		sol, err := proto.ParseSolution(d, string(solText))
		if err != nil {
			return fmt.Errorf("schedule: %v", err)
		}
		workers := params.Workers
		if workers <= 0 {
			workers = 1
		}
		resp, err = proto.Verify(ctx, family.Suspect{Design: d, Solution: sol}, sig, params, workers)
		if err != nil {
			return err
		}
	}
	fmt.Printf("claim by %q: %d/%d re-derived constraints satisfied, Pc %s\n",
		sig, resp.Satisfied, resp.Total, resp.Pc)
	if !resp.Verified {
		fmt.Println("verdict: claim NOT verified")
		flushTrace(ctx)
		os.Exit(3)
	}
	fmt.Println("verdict: claim verified")
	return nil
}
