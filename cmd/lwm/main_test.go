package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"localwm/internal/designs"
	"localwm/internal/prng"
	"localwm/internal/schedwm"
	"localwm/lwmapi"
)

func TestParseScheduleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := designs.WaveletFilter()
	path := filepath.Join(dir, "sched.txt")
	content := "budget 20\nstep lo_m0 1\nstep lo_a1 3\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := parseSchedule(g, path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Budget != 20 {
		t.Fatalf("budget = %d", s.Budget)
	}
	if s.Steps[g.MustNode("lo_m0")] != 1 || s.Steps[g.MustNode("lo_a1")] != 3 {
		t.Fatal("steps not parsed")
	}
}

func TestParseScheduleErrors(t *testing.T) {
	dir := t.TempDir()
	g := designs.WaveletFilter()
	for name, content := range map[string]string{
		"unknown-node": "step nosuch 3\n",
		"garbage":      "frobnicate\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := parseSchedule(g, path); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestBuiltinDesignsAllBuild(t *testing.T) {
	for name, build := range builtinDesigns {
		g := build()
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRecordFileJSONRoundTrip(t *testing.T) {
	g := designs.Layered(designs.MediaBench()[0].Cfg)
	cp, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	wm, err := schedwm.Embed(g, prng.Signature("json"), schedwm.Config{
		Tau: 20, K: 4, Epsilon: 0.25, Budget: cp + 6})
	if err != nil {
		t.Fatal(err)
	}
	rf := recordFile{Signature: []byte("json"), Records: []lwmapi.Record{lwmapi.FromSchedRecord(wm.Record())}}
	data, err := json.Marshal(rf)
	if err != nil {
		t.Fatal(err)
	}
	var back recordFile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != 1 {
		t.Fatal("records lost")
	}
	r0, r1 := rf.Records[0], back.Records[0]
	if string(r0.Signature) != string(r1.Signature) || r0.Index != r1.Index ||
		r0.Try != r1.Try || r0.TLen != r1.TLen || r0.RootFP != r1.RootFP ||
		len(r0.RankEdges) != len(r1.RankEdges) {
		t.Fatalf("record mangled: %+v vs %+v", r0, r1)
	}
}

// TestCommandsEndToEnd drives the subcommand functions through temp files:
// gen -> embed -> schedule -> detect, plus dot rendering.
func TestCommandsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	design := filepath.Join(dir, "d.cdfg")
	marked := filepath.Join(dir, "m.cdfg")
	rec := filepath.Join(dir, "r.json")
	schedPath := filepath.Join(dir, "s.txt")
	dot := filepath.Join(dir, "g.dot")

	if err := cmdGen([]string{"-design", "dac", "-o", design}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEmbed([]string{"-in", design, "-sig", "cli-test", "-n", "2",
		"-tau", "16", "-k", "3", "-epsilon", "0.4", "-out", marked, "-record", rec}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSchedule([]string{"-in", marked, "-out", schedPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDetect([]string{"-in", design, "-schedule", schedPath, "-record", rec}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDot([]string{"-in", marked, "-o", dot}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Fatal("dot output malformed")
	}
	if err := cmdInfo([]string{"-in", marked}); err != nil {
		t.Fatal(err)
	}
}

// TestCmdVerifyEndToEnd embeds with known public parameters and verifies
// the claim through the CLI path.
func TestCmdVerifyEndToEnd(t *testing.T) {
	dir := t.TempDir()
	design := filepath.Join(dir, "d.cdfg")
	marked := filepath.Join(dir, "m.cdfg")
	rec := filepath.Join(dir, "r.json")
	schedPath := filepath.Join(dir, "s.txt")
	if err := cmdGen([]string{"-design", "dac", "-o", design}); err != nil {
		t.Fatal(err)
	}
	args := []string{"-in", design, "-sig", "owner", "-n", "2",
		"-tau", "16", "-k", "3", "-epsilon", "0.4"}
	if err := cmdEmbed(append(args, "-out", marked, "-record", rec)); err != nil {
		t.Fatal(err)
	}
	if err := cmdSchedule([]string{"-in", marked, "-out", schedPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-in", design, "-schedule", schedPath,
		"-sig", "owner", "-n", "2", "-tau", "16", "-k", "3", "-epsilon", "0.4"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdSynthReport(t *testing.T) {
	dir := t.TempDir()
	design := filepath.Join(dir, "w.cdfg")
	if err := cmdGen([]string{"-design", "wavelet", "-o", design}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSynth([]string{"-in", design, "-budget", "20"}); err != nil {
		t.Fatal(err)
	}
	// Default budget path (critical path) and the list-scheduler branch
	// for large designs.
	big := filepath.Join(dir, "e.cdfg")
	if err := cmdGen([]string{"-design", "echo", "-o", big}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSynth([]string{"-in", big}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdGenUnknownDesign(t *testing.T) {
	if err := cmdGen([]string{"-design", "nosuch"}); err == nil {
		t.Fatal("unknown design accepted")
	}
}
