package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"localwm/internal/server"
)

// TestRemoteModeMatchesLocal drives embed → detect → verify through a
// real daemon with -remote and requires the printed reports and output
// files to be byte-identical to the in-process runs.
func TestRemoteModeMatchesLocal(t *testing.T) {
	srv := server.New(server.Config{EngineWorkers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dir := t.TempDir()
	design := filepath.Join(dir, "d.cdfg")
	if err := cmdGen([]string{"-design", "dac", "-o", design}); err != nil {
		t.Fatal(err)
	}
	embedArgs := func(marked, rec string, extra ...string) []string {
		return append([]string{"-in", design, "-sig", "remote-test", "-n", "2",
			"-tau", "16", "-k", "3", "-epsilon", "0.4",
			"-out", marked, "-record", rec}, extra...)
	}

	localMarked := filepath.Join(dir, "local.cdfg")
	localRec := filepath.Join(dir, "local.json")
	localOut := captureStdout(t, func() error {
		return cmdEmbed(embedArgs(localMarked, localRec))
	})

	remoteMarked := filepath.Join(dir, "remote.cdfg")
	remoteRec := filepath.Join(dir, "remote.json")
	remoteOut := captureStdout(t, func() error {
		return cmdEmbed(embedArgs(remoteMarked, remoteRec, "-remote", ts.URL))
	})
	if localOut != remoteOut {
		t.Fatalf("embed output diverged:\nlocal  %q\nremote %q", localOut, remoteOut)
	}
	for _, pair := range [][2]string{{localMarked, remoteMarked}, {localRec, remoteRec}} {
		a, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s and %s differ", pair[0], pair[1])
		}
	}

	schedPath := filepath.Join(dir, "s.txt")
	if err := cmdSchedule([]string{"-in", localMarked, "-out", schedPath}); err != nil {
		t.Fatal(err)
	}

	detectArgs := []string{"-in", design, "-schedule", schedPath, "-record", localRec}
	localDetect := captureStdout(t, func() error { return cmdDetect(detectArgs) })
	remoteDetect := captureStdout(t, func() error {
		return cmdDetect(append(detectArgs, "-remote", ts.URL))
	})
	if localDetect != remoteDetect {
		t.Fatalf("detect output diverged:\nlocal  %q\nremote %q", localDetect, remoteDetect)
	}

	verifyArgs := []string{"-in", design, "-schedule", schedPath, "-sig", "remote-test",
		"-n", "2", "-tau", "16", "-k", "3", "-epsilon", "0.4"}
	localVerify := captureStdout(t, func() error { return cmdVerify(verifyArgs) })
	remoteVerify := captureStdout(t, func() error {
		return cmdVerify(append(verifyArgs, "-remote", ts.URL))
	})
	if localVerify != remoteVerify {
		t.Fatalf("verify output diverged:\nlocal  %q\nremote %q", localVerify, remoteVerify)
	}
}

// TestRemoteRefModeMatchesInline drives the registry surface end to end:
// lwm design put prints a scriptable reference, embed/detect/verify with
// -ref print byte-identical reports (and write byte-identical artifacts)
// to their inline -remote runs, and design get round-trips the canonical
// text.
func TestRemoteRefModeMatchesInline(t *testing.T) {
	srv := server.New(server.Config{EngineWorkers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dir := t.TempDir()
	design := filepath.Join(dir, "d.cdfg")
	if err := cmdGen([]string{"-design", "dac", "-o", design}); err != nil {
		t.Fatal(err)
	}

	ref := strings.TrimSpace(captureStdout(t, func() error {
		return cmdDesign([]string{"put", "-remote", ts.URL, "-in", design})
	}))
	if len(ref) != 64 {
		t.Fatalf("design put printed %q, want a 64-hex reference", ref)
	}
	// Idempotent: the same design answers the same reference.
	again := strings.TrimSpace(captureStdout(t, func() error {
		return cmdDesign([]string{"put", "-remote", ts.URL, "-in", design})
	}))
	if again != ref {
		t.Fatalf("re-put changed the reference: %s vs %s", again, ref)
	}

	// Embed: inline -remote vs -ref, identical report and artifacts.
	inMarked, inRec := filepath.Join(dir, "in.cdfg"), filepath.Join(dir, "in.json")
	refMarked, refRec := filepath.Join(dir, "ref.cdfg"), filepath.Join(dir, "ref.json")
	embedArgs := []string{"-sig", "ref-test", "-n", "2", "-tau", "16", "-k", "3",
		"-epsilon", "0.4", "-remote", ts.URL}
	inlineEmbed := captureStdout(t, func() error {
		return cmdEmbed(append([]string{"-in", design, "-out", inMarked, "-record", inRec}, embedArgs...))
	})
	refEmbed := captureStdout(t, func() error {
		return cmdEmbed(append([]string{"-ref", ref, "-out", refMarked, "-record", refRec}, embedArgs...))
	})
	if inlineEmbed != refEmbed {
		t.Fatalf("embed output diverged:\ninline %q\nref    %q", inlineEmbed, refEmbed)
	}
	for _, pair := range [][2]string{{inMarked, refMarked}, {inRec, refRec}} {
		a, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s and %s differ", pair[0], pair[1])
		}
	}

	schedPath := filepath.Join(dir, "s.txt")
	if err := cmdSchedule([]string{"-in", inMarked, "-out", schedPath}); err != nil {
		t.Fatal(err)
	}

	detectInline := captureStdout(t, func() error {
		return cmdDetect([]string{"-in", design, "-schedule", schedPath,
			"-record", inRec, "-remote", ts.URL})
	})
	detectRef := captureStdout(t, func() error {
		return cmdDetect([]string{"-ref", ref, "-schedule", schedPath,
			"-record", inRec, "-remote", ts.URL})
	})
	if detectInline != detectRef {
		t.Fatalf("detect output diverged:\ninline %q\nref    %q", detectInline, detectRef)
	}

	verifyArgs := []string{"-schedule", schedPath, "-sig", "ref-test",
		"-n", "2", "-tau", "16", "-k", "3", "-epsilon", "0.4", "-remote", ts.URL}
	verifyInline := captureStdout(t, func() error {
		return cmdVerify(append([]string{"-in", design}, verifyArgs...))
	})
	verifyRef := captureStdout(t, func() error {
		return cmdVerify(append([]string{"-ref", ref}, verifyArgs...))
	})
	if verifyInline != verifyRef {
		t.Fatalf("verify output diverged:\ninline %q\nref    %q", verifyInline, verifyRef)
	}

	// design get returns the canonical text: re-putting what it printed
	// must answer the same reference.
	got := captureStdout(t, func() error {
		return cmdDesign([]string{"get", "-remote", ts.URL, "-ref", ref})
	})
	roundTrip := filepath.Join(dir, "rt.cdfg")
	if err := os.WriteFile(roundTrip, []byte(got), 0o644); err != nil {
		t.Fatal(err)
	}
	rtRef := strings.TrimSpace(captureStdout(t, func() error {
		return cmdDesign([]string{"put", "-remote", ts.URL, "-in", roundTrip})
	}))
	if rtRef != ref {
		t.Fatalf("get→put round-trip changed the reference: %s vs %s", rtRef, ref)
	}

	// -ref is remote-only.
	if err := cmdDetect([]string{"-ref", ref, "-schedule", schedPath, "-record", inRec}); err == nil {
		t.Fatal("-ref without -remote accepted")
	}
}

// TestRemoteModeSurfacesServiceErrors: a definite service rejection (bad
// request) comes back as an error, not a retry loop.
func TestRemoteModeSurfacesServiceErrors(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dir := t.TempDir()
	design := filepath.Join(dir, "d.cdfg")
	if err := cmdGen([]string{"-design", "dac", "-o", design}); err != nil {
		t.Fatal(err)
	}
	// Empty signature is a 400 from the daemon.
	err := remoteEmbed(context.Background(), ts.URL, design, "", "", 2, 16, 3, 0.4, 0, 1, "", "")
	if err == nil {
		t.Fatal("empty signature accepted")
	}
}
