package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"localwm/internal/server"
)

// TestRemoteModeMatchesLocal drives embed → detect → verify through a
// real daemon with -remote and requires the printed reports and output
// files to be byte-identical to the in-process runs.
func TestRemoteModeMatchesLocal(t *testing.T) {
	srv := server.New(server.Config{EngineWorkers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dir := t.TempDir()
	design := filepath.Join(dir, "d.cdfg")
	if err := cmdGen([]string{"-design", "dac", "-o", design}); err != nil {
		t.Fatal(err)
	}
	embedArgs := func(marked, rec string, extra ...string) []string {
		return append([]string{"-in", design, "-sig", "remote-test", "-n", "2",
			"-tau", "16", "-k", "3", "-epsilon", "0.4",
			"-out", marked, "-record", rec}, extra...)
	}

	localMarked := filepath.Join(dir, "local.cdfg")
	localRec := filepath.Join(dir, "local.json")
	localOut := captureStdout(t, func() error {
		return cmdEmbed(embedArgs(localMarked, localRec))
	})

	remoteMarked := filepath.Join(dir, "remote.cdfg")
	remoteRec := filepath.Join(dir, "remote.json")
	remoteOut := captureStdout(t, func() error {
		return cmdEmbed(embedArgs(remoteMarked, remoteRec, "-remote", ts.URL))
	})
	if localOut != remoteOut {
		t.Fatalf("embed output diverged:\nlocal  %q\nremote %q", localOut, remoteOut)
	}
	for _, pair := range [][2]string{{localMarked, remoteMarked}, {localRec, remoteRec}} {
		a, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s and %s differ", pair[0], pair[1])
		}
	}

	schedPath := filepath.Join(dir, "s.txt")
	if err := cmdSchedule([]string{"-in", localMarked, "-out", schedPath}); err != nil {
		t.Fatal(err)
	}

	detectArgs := []string{"-in", design, "-schedule", schedPath, "-record", localRec}
	localDetect := captureStdout(t, func() error { return cmdDetect(detectArgs) })
	remoteDetect := captureStdout(t, func() error {
		return cmdDetect(append(detectArgs, "-remote", ts.URL))
	})
	if localDetect != remoteDetect {
		t.Fatalf("detect output diverged:\nlocal  %q\nremote %q", localDetect, remoteDetect)
	}

	verifyArgs := []string{"-in", design, "-schedule", schedPath, "-sig", "remote-test",
		"-n", "2", "-tau", "16", "-k", "3", "-epsilon", "0.4"}
	localVerify := captureStdout(t, func() error { return cmdVerify(verifyArgs) })
	remoteVerify := captureStdout(t, func() error {
		return cmdVerify(append(verifyArgs, "-remote", ts.URL))
	})
	if localVerify != remoteVerify {
		t.Fatalf("verify output diverged:\nlocal  %q\nremote %q", localVerify, remoteVerify)
	}
}

// TestRemoteModeSurfacesServiceErrors: a definite service rejection (bad
// request) comes back as an error, not a retry loop.
func TestRemoteModeSurfacesServiceErrors(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dir := t.TempDir()
	design := filepath.Join(dir, "d.cdfg")
	if err := cmdGen([]string{"-design", "dac", "-o", design}); err != nil {
		t.Fatal(err)
	}
	// Empty signature is a 400 from the daemon.
	err := remoteEmbed(context.Background(), ts.URL, design, "", 2, 16, 3, 0.4, 0, 1, "", "")
	if err == nil {
		t.Fatal("empty signature accepted")
	}
}
