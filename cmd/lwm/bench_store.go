package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"localwm/internal/cdfg"
	"localwm/internal/designs"
	"localwm/internal/engine"
	"localwm/internal/prng"
	"localwm/internal/sched"
	"localwm/internal/schedwm"
	"localwm/internal/server"
	"localwm/lwmapi"
	"localwm/lwmclient"
)

// storeBenchRow is one design's repeat-detect comparison: the same
// suspect scanned against the same records, once shipping the design
// inline on every request (the daemon re-parses and re-warms the
// longest-path oracle each time) and once by registry reference after a
// single put (the daemon reuses the cached graph and oracle).
type storeBenchRow struct {
	Design  string `json:"design"`
	Ops     int    `json:"ops"`
	Records int    `json:"records"`
	Repeats int    `json:"repeats"`
	// PutNs is the one-time registration cost the ref mode pays.
	PutNs int64 `json:"put_ns"`
	// InlineNs and RefNs are the best whole-loop wall times (Repeats
	// sequential detect calls) for each mode.
	InlineNs int64 `json:"inline_ns"`
	RefNs    int64 `json:"ref_ns"`
	// Speedup is InlineNs/RefNs: >1 means the registry paid off.
	Speedup float64 `json:"speedup"`
	// Identical confirms the two modes' detection grids were
	// byte-for-byte the same JSON — the registry is a cache, never a
	// semantic change.
	Identical bool `json:"identical"`
}

// storeBenchFile is the BENCH_store.json envelope.
type storeBenchFile struct {
	Remote  string          `json:"remote"`
	N       int             `json:"n"`
	Repeats int             `json:"repeats"`
	Iters   int             `json:"iters"`
	Rows    []storeBenchRow `json:"rows"`
}

// benchStore measures what the design registry buys on the paper's
// dominant workload — many scans of the same design: embed and schedule
// locally, then time `repeats` sequential remote detects inline versus
// by reference. With remote empty it boots an in-process daemon on a
// loopback port so the benchmark is self-contained.
func benchStore(remote string, n, repeats, iters int, out string) error {
	if remote == "" {
		srv := server.New(server.Config{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		remote = ln.Addr().String()
	}
	c, err := newRemoteClient(remote)
	if err != nil {
		return err
	}
	ctx := context.Background()

	type entry struct {
		name  string
		build func() *cdfg.Graph
	}
	// The large layered MediaBench design is where the registry matters
	// most: its parse + oracle warmup dwarf a single detect scan.
	mb := designs.MediaBench()[1]
	entries := []entry{
		{"4th Order Parallel IIR", designs.FourthOrderParallelIIR},
		{"Wavelet Filter", designs.WaveletFilter},
		{"Modem Filter", designs.ModemFilter},
		{"mediabench/" + mb.Name, func() *cdfg.Graph { return designs.Layered(mb.Cfg) }},
	}

	bf := storeBenchFile{Remote: remote, N: n, Repeats: repeats, Iters: iters}
	for _, e := range entries {
		g := e.build()
		cp, err := g.CriticalPath()
		if err != nil {
			return err
		}
		cfg := schedwm.Config{Tau: 14, K: 3, Epsilon: 0.1, Budget: cp + cp/2 + 2}

		// Prepare the suspect locally: marked design, its schedule, and
		// the detection records.
		work := g.Clone()
		wms, err := engine.EmbedMany(work, prng.Signature("alice"), cfg, n, 1)
		if err != nil {
			return fmt.Errorf("%s: embed: %v", e.name, err)
		}
		var records []lwmclient.Record
		for _, wm := range wms {
			records = append(records, lwmapi.FromSchedRecord(wm.Record()))
		}
		var designBuf bytes.Buffer
		if err := cdfg.Write(&designBuf, work); err != nil {
			return err
		}
		s, err := sched.ListSchedule(work, sched.ListOpts{UseTemporal: true})
		if err != nil {
			return err
		}
		var schedBuf bytes.Buffer
		if err := sched.WriteSchedule(&schedBuf, work, s); err != nil {
			return err
		}
		designText, schedText := designBuf.String(), schedBuf.String()

		detect := func(sp lwmclient.Suspect) (*lwmclient.DetectResult, error) {
			res, err := c.Detect(ctx, lwmclient.DetectRequest{
				Suspects: []lwmclient.Suspect{sp}, Records: records,
			})
			if err != nil {
				return nil, err
			}
			if !res.Complete() {
				return nil, res.Failed[0]
			}
			return res, nil
		}
		timeLoop := func(sp lwmclient.Suspect) (time.Duration, *lwmclient.DetectResult, error) {
			// One untimed call first so connection setup is paid in both
			// modes before the clock starts.
			last, err := detect(sp)
			if err != nil {
				return 0, nil, err
			}
			best := time.Duration(0)
			for it := 0; it < iters; it++ {
				start := time.Now()
				for r := 0; r < repeats; r++ {
					if last, err = detect(sp); err != nil {
						return 0, nil, err
					}
				}
				if el := time.Since(start); best == 0 || el < best {
					best = el
				}
			}
			return best, last, nil
		}

		row := storeBenchRow{Design: e.name, Ops: len(g.Computational()),
			Records: len(records), Repeats: repeats}

		inlineBest, inlineRes, err := timeLoop(lwmclient.Suspect{Design: designText, Schedule: schedText})
		if err != nil {
			return fmt.Errorf("%s: inline detect: %v", e.name, err)
		}
		putStart := time.Now()
		put, err := c.PutDesign(ctx, designText)
		if err != nil {
			return fmt.Errorf("%s: put: %v", e.name, err)
		}
		row.PutNs = time.Since(putStart).Nanoseconds()
		refBest, refRes, err := timeLoop(lwmclient.Suspect{DesignRef: put.Ref, Schedule: schedText})
		if err != nil {
			return fmt.Errorf("%s: ref detect: %v", e.name, err)
		}

		inlineJSON, err := json.Marshal(inlineRes.Results)
		if err != nil {
			return err
		}
		refJSON, err := json.Marshal(refRes.Results)
		if err != nil {
			return err
		}
		row.Identical = bytes.Equal(inlineJSON, refJSON)
		row.InlineNs = inlineBest.Nanoseconds()
		row.RefNs = refBest.Nanoseconds()
		if row.RefNs > 0 {
			row.Speedup = float64(row.InlineNs) / float64(row.RefNs)
		}
		bf.Rows = append(bf.Rows, row)
		fmt.Printf("%-24s ops %4d  rec %2d  inline(x%d) %10s  ref(x%d) %10s  x%.2f  identical=%v\n",
			e.name, row.Ops, row.Records, repeats, inlineBest, repeats, refBest, row.Speedup, row.Identical)
		if !row.Identical {
			return fmt.Errorf("%s: ref-based detection diverged from inline", e.name)
		}
		if row.Speedup <= 1 {
			fmt.Printf("  note: reference mode not faster here (x%.2f) — expected only on loaded or remote hosts\n", row.Speedup)
		}
	}

	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
