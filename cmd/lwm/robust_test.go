package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"localwm/internal/server"
)

// writeBattery drops a small battery spec file: 2 units, fast enough for
// a CLI test while still exercising two attack families.
func writeBattery(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "battery.json")
	spec := `{
  "attacks": [
    {"family": "perturb", "intensities": [3]},
    {"family": "renumber", "intensities": [1]}
  ],
  "trials": 1,
  "alpha": 1e-3
}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCmdRobustLocalMatchesDaemon is the offline-mode acceptance: the
// same design, signature, seed, and battery file must produce
// byte-identical report files whether the campaign ran in-process, on a
// daemon synchronously, or on a daemon through the job queue — and at
// any local worker count.
func TestCmdRobustLocalMatchesDaemon(t *testing.T) {
	srv := server.New(server.Config{EngineWorkers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dir := t.TempDir()
	design := filepath.Join(dir, "d.cdfg")
	if err := cmdGen([]string{"-design", "dac", "-o", design}); err != nil {
		t.Fatal(err)
	}
	battery := writeBattery(t, dir)
	base := []string{"-in", design, "-sig", "cli-robust", "-seed", "cli-seed",
		"-battery", battery, "-n", "2", "-tau", "16", "-k", "3", "-epsilon", "0.4"}

	run := func(out string, extra ...string) []byte {
		t.Helper()
		args := append(append([]string{}, base...), "-o", out)
		args = append(args, extra...)
		if err := cmdRobust(args); err != nil {
			t.Fatalf("lwm robust %v: %v", extra, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	local := run(filepath.Join(dir, "local.json"))
	if !bytes.Contains(local, []byte(`"report"`)) || !bytes.Contains(local, []byte(`"perturb"`)) {
		t.Fatalf("local report shape: %s", local)
	}

	localParallel := run(filepath.Join(dir, "local8.json"), "-workers", "8")
	if !bytes.Equal(local, localParallel) {
		t.Fatalf("local report diverged across worker counts")
	}

	remoteSync := run(filepath.Join(dir, "remote.json"), "-remote", ts.URL)
	if !bytes.Equal(local, remoteSync) {
		t.Fatalf("daemon report diverged from local:\nlocal  %s\nremote %s", local, remoteSync)
	}

	remoteAsync := run(filepath.Join(dir, "async.json"), "-remote", ts.URL, "-async")
	if !bytes.Equal(local, remoteAsync) {
		t.Fatalf("queued daemon report diverged from local:\nlocal %s\nasync %s", local, remoteAsync)
	}
}

// TestCmdRobustQueuedJobID: -wait=false prints the queued job's ID alone
// on stdout, collectable later with `lwm job wait`.
func TestCmdRobustQueuedJobID(t *testing.T) {
	srv := server.New(server.Config{EngineWorkers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dir := t.TempDir()
	design := filepath.Join(dir, "d.cdfg")
	if err := cmdGen([]string{"-design", "dac", "-o", design}); err != nil {
		t.Fatal(err)
	}
	battery := writeBattery(t, dir)

	out := captureStdout(t, func() error {
		return cmdRobust([]string{"-in", design, "-sig", "cli-robust", "-seed", "s",
			"-battery", battery, "-tau", "16", "-k", "3", "-epsilon", "0.4",
			"-remote", ts.URL, "-async", "-wait=false"})
	})
	id := strings.TrimSpace(out)
	if id == "" || strings.ContainsAny(id, " \n{") {
		t.Fatalf("stdout must carry the job ID alone, got %q", out)
	}

	result := filepath.Join(dir, "result.json")
	if err := cmdJobWait([]string{"-remote", ts.URL, "-id", id, "-out", result}); err != nil {
		t.Fatalf("lwm job wait: %v", err)
	}
	data, err := os.ReadFile(result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"report"`)) {
		t.Fatalf("job result is not a report envelope: %s", data)
	}
}

// TestCmdRobustValidation covers the flag-surface errors.
func TestCmdRobustValidation(t *testing.T) {
	if err := cmdRobust([]string{"-in", "x.cdfg"}); err == nil || !strings.Contains(err.Error(), "-sig") {
		t.Fatalf("missing -sig accepted: %v", err)
	}
	if err := cmdRobust([]string{"-in", "x.cdfg", "-sig", "a", "-async"}); err == nil || !strings.Contains(err.Error(), "-remote") {
		t.Fatalf("-async without -remote accepted: %v", err)
	}
	if err := cmdRobust([]string{"-ref", "abc", "-sig", "a"}); err == nil || !strings.Contains(err.Error(), "-remote") {
		t.Fatalf("-ref without -remote accepted: %v", err)
	}
}
