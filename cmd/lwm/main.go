// Command lwm is the local-watermarking toolchain driver:
//
//	lwm gen -design <name> -o design.cdfg
//	    write one of the built-in benchmark designs to a file
//	lwm info -in design.cdfg
//	    print design statistics (ops, critical path, laxity profile)
//	lwm embed -in design.cdfg -sig <signature> [-n 2] [-tau 20] [-k 4]
//	          [-epsilon 0.25] [-budget 0] -out marked.cdfg -record rec.json
//	    embed scheduling watermarks; writes the constrained design and the
//	    detection record
//	lwm schedule -in marked.cdfg -out sched.txt [-budget 0]
//	    produce a schedule honoring the embedded temporal constraints
//	lwm detect -in suspect.cdfg -schedule sched.txt -record rec.json
//	    scan a suspect scheduled design for the recorded watermarks
//	lwm verify -in suspect.cdfg -schedule sched.txt -sig <signature> ...
//	    adjudicate an ownership claim by re-deriving the constraints from
//	    the claimed signature (no record trusted)
//	lwm synth -in design.cdfg [-budget N]
//	    run the plain behavioral-synthesis pipeline and print the
//	    allocation report (schedule, covering, modules, registers)
//	lwm robust -in design.cdfg -sig <signature> [-seed S] [-battery spec.json]
//	    run a seeded attack campaign against the re-marked design and
//	    print the structured robustness report
//	lwm trace {list|get} -remote <addr>
//	    read a daemon's flight recorder: list retained traces, render one
//	    trace's span tree with stage timings and engine counter deltas
//	lwm prof {list|get|diff} -remote <addr>
//	    list, fetch, and diff a daemon's pprof snapshots; diff prints a
//	    top-N symbol delta table with the built-in pprof reader
//	lwm dot -in design.cdfg [-o out.dot]
//	    render the design for Graphviz
//
// embed, detect, and verify also accept -remote <addr>: the work then
// runs on a lwmd daemon through the resilient lwmclient (retries,
// circuit breaker) with byte-identical printed output, so scripts can
// switch between local and remote without changing their parsing.
//
// Remote mode additionally supports the daemon's design registry:
//
//	lwm design put -remote <addr> -in design.cdfg
//	    register a design; prints its content-addressed reference (the
//	    SHA-256 of the canonical text) alone on stdout for scripting
//	lwm design get -remote <addr> -ref <ref> [-o out.cdfg]
//	    fetch a registered design's canonical text back
//
// and embed/detect/verify accept -ref <reference> in place of -in, so
// repeat requests against a registered design skip re-sending and
// re-parsing its text.
//
// The full experiment reproduction lives in the sibling command `tables`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"localwm/internal/cdfg"
	"localwm/internal/designs"
	"localwm/internal/engine"
	"localwm/internal/obs"
	"localwm/internal/prng"
	"localwm/internal/sched"
	"localwm/internal/schedwm"
	"localwm/internal/tmatch"
	"localwm/lwmapi"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "embed":
		err = cmdEmbed(os.Args[2:])
	case "schedule":
		err = cmdSchedule(os.Args[2:])
	case "detect":
		err = cmdDetect(os.Args[2:])
	case "dot":
		err = cmdDot(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "synth":
		err = cmdSynth(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "design":
		err = cmdDesign(os.Args[2:])
	case "families":
		err = cmdFamilies(os.Args[2:])
	case "job":
		err = cmdJob(os.Args[2:])
	case "robust":
		err = cmdRobust(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "prof":
		err = cmdProf(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lwm: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lwm {gen|info|embed|schedule|detect|verify|synth|bench|design|families|job|robust|trace|prof|dot} [flags]")
}

// traceCtx builds the context for a marking command. With -trace off it
// is a plain background context and a no-op finish. With -trace on, the
// context carries a fresh obs.Trace — the engine, the oracle bridge, and
// (in remote mode) the resilient client all hang their spans on it — and
// finish prints the span tree to stderr after the report, leaving stdout
// byte-identical to an untraced run.
func traceCtx(enabled bool) (context.Context, func()) {
	if !enabled {
		return context.Background(), func() {}
	}
	tr := obs.NewTrace(obs.NewTraceID())
	return obs.WithTrace(context.Background(), tr), func() { tr.WriteTree(os.Stderr) }
}

// flushTrace prints ctx's trace tree now — for the os.Exit(3) report
// paths, which never run deferred finishers. No-op when untraced (and
// harmless with the deferred finish: os.Exit skips defers entirely).
func flushTrace(ctx context.Context) {
	if tr := obs.TraceFrom(ctx); tr != nil {
		tr.WriteTree(os.Stderr)
	}
}

// observeGraph mirrors the daemon's oracle bridge for local traced runs:
// PathOracle recomputations on g appear as "oracle.<kind>" spans.
func observeGraph(ctx context.Context, g *cdfg.Graph) {
	tr := obs.TraceFrom(ctx)
	if tr == nil {
		return
	}
	parent := obs.CurrentSpan(ctx)
	g.OnPathRecompute(func(kind string, start time.Time, elapsed time.Duration) {
		tr.Record(parent, "oracle."+kind, start, elapsed)
	})
}

// cmdSynth runs the full behavioral-synthesis pipeline on a design and
// prints an allocation report: schedule, template covering, module and
// register allocation, and functional-unit binding — the substrate the
// watermarking protocols ride on, usable on its own.
func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	in := fs.String("in", "", "design file")
	budget := fs.Int("budget", 0, "control-step budget (0: critical path)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	st, err := cdfg.ComputeStats(g)
	if err != nil {
		return err
	}
	fmt.Println(st)
	if *budget == 0 {
		*budget = st.CriticalPath
	}

	// Schedule (time-constrained, force-directed when tractable).
	var s *sched.Schedule
	if st.Computational <= 400 {
		s, err = sched.FDSchedule(g, sched.FDSOpts{Budget: *budget, UseTemporal: true})
	} else {
		s, err = sched.ListSchedule(g, sched.ListOpts{UseTemporal: true})
	}
	if err != nil {
		return err
	}
	fmt.Printf("schedule: %d control steps (budget %d)\n", s.Makespan(), *budget)
	use := sched.ResourceUsage(g, s)
	fmt.Printf("peak functional units: %d ALU, %d MUL, %d MEM, %d BR\n",
		use[sched.FUALU], use[sched.FUMul], use[sched.FUMem], use[sched.FUBr])

	// Registers and binding.
	regs, err := sched.MinRegisters(g, s, nil)
	if err != nil {
		return err
	}
	bind, err := sched.BindFUs(g, s, true)
	if err != nil {
		return err
	}
	fmt.Printf("registers: %d (left-edge); interconnect switches: %d\n", regs, bind.Switches)

	// Template covering and allocation at the budget.
	lib := tmatch.StandardLibrary()
	cover, err := tmatch.GreedyCover(g, lib, tmatch.Constraints{}, nil)
	if err != nil {
		return err
	}
	alloc, err := tmatch.Allocate(g, lib, cover, *budget, nil)
	if err != nil {
		return err
	}
	fmt.Printf("template covering: %d module instantiations, %d registers, %d total modules\n",
		len(cover.Matchings), alloc.Registers, alloc.Modules)
	for name, count := range cover.Uses(lib) {
		fmt.Printf("  %-8s x%d\n", name, count)
	}
	return nil
}

// cmdVerify adjudicates an ownership claim without trusting any record:
// the marking derivation is re-run from the claimed signature and its
// constraints checked against the suspect schedule. The embedding
// parameters are public and must match the claimant's.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	in := fs.String("in", "", "suspect design file")
	schedPath := fs.String("schedule", "", "suspect schedule file")
	sig := fs.String("sig", "", "claimed author signature")
	n := fs.Int("n", 2, "number of local watermarks claimed")
	tau := fs.Int("tau", 20, "subtree cardinality τ")
	k := fs.Int("k", 4, "temporal edges per watermark K")
	eps := fs.Float64("epsilon", 0.25, "laxity margin ε")
	budget := fs.Int("budget", 0, "control-step budget (0: critical path + 10%)")
	workers := fs.Int("workers", 1, "parallel re-derivation workers (verdict is identical for any value)")
	remote := fs.String("remote", "", "lwmd daemon address (empty: verify in-process)")
	apiKeyFlag(fs)
	ref := fs.String("ref", "", "design registry reference in place of -in (remote only; see lwm design put)")
	fam := familyFlag(fs)
	trace := fs.Bool("trace", false, "print the span tree (engine stages, oracle recomputes, remote attempts) to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkRefFlag(*ref, *remote); err != nil {
		return err
	}
	ctx, finishTrace := traceCtx(*trace)
	defer finishTrace()
	if f := lwmapi.CanonicalFamily(*fam); f != lwmapi.FamilySched {
		return familyVerify(ctx, f, *remote, *in, *ref, *schedPath, *sig,
			markParamsFrom(fs, n, tau, k, eps, budget, workers))
	}
	if *remote != "" {
		return remoteVerify(ctx, *remote, *in, *ref, *schedPath, *sig, *n, *tau, *k, *eps, *budget, *workers)
	}
	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	s, err := parseSchedule(g, *schedPath)
	if err != nil {
		return err
	}
	if *budget == 0 {
		cp, err := g.CriticalPath()
		if err != nil {
			return err
		}
		*budget = cp + cp/10 + 1
	}
	observeGraph(ctx, g)
	cfg := schedwm.Config{Tau: *tau, K: *k, Epsilon: *eps, Budget: *budget, Parallelism: *workers}
	det, err := engine.VerifyOwnershipCtx(ctx, g, s, prng.Signature(*sig), cfg, *n, *workers)
	if err != nil {
		return err
	}
	fmt.Printf("claim by %q: %d/%d re-derived constraints satisfied, Pc %v\n",
		*sig, det.Best.Satisfied, det.Best.Total, det.Best.Pc)
	if !det.Found {
		fmt.Println("verdict: claim NOT verified")
		flushTrace(ctx)
		os.Exit(3)
	}
	fmt.Println("verdict: claim verified")
	return nil
}

func cmdDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	in := fs.String("in", "", "design file")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return cdfg.WriteDot(w, g, nil)
}

// builtinDesigns maps design names to constructors.
var builtinDesigns = map[string]func() *cdfg.Graph{
	"iir4":      designs.FourthOrderParallelIIR,
	"cfiir8":    designs.EighthOrderCFIIR,
	"gectrl":    designs.LinearGEController,
	"wavelet":   designs.WaveletFilter,
	"modem":     designs.ModemFilter,
	"volterra2": designs.Volterra2,
	"volterra3": designs.Volterra3,
	"dac":       designs.DAConverter,
	"echo":      designs.LongEchoCanceler,
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	name := fs.String("design", "", "design name (iir4, cfiir8, gectrl, wavelet, modem, volterra2, volterra3, dac, echo, or a MediaBench app like 'epic')")
	out := fs.String("o", "", "output file (default stdout)")
	fam := familyFlag(fs)
	nodes := fs.Int("nodes", 48, "vertex count (gcolor family)")
	density := fs.Int("density", 15, "edge probability in percent beyond the connectivity backbone (gcolor family)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if f := lwmapi.CanonicalFamily(*fam); f == lwmapi.FamilyGcolor {
		// Graph-coloring instances are generated, not drawn from the
		// benchmark suite: -design seeds the deterministic generator.
		return genGcolor(*name, *nodes, *density, *out)
	} else if f != lwmapi.FamilySched {
		return fmt.Errorf("gen: family %q designs are cdfg text; use the built-in designs (omit -family)", f)
	}
	var g *cdfg.Graph
	if build, ok := builtinDesigns[*name]; ok {
		g = build()
	} else {
		for _, app := range designs.MediaBench() {
			if app.Name == *name {
				g = designs.Layered(app.Cfg)
				break
			}
		}
	}
	if g == nil {
		return fmt.Errorf("unknown design %q", *name)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return cdfg.Write(w, g)
}

func loadGraph(path string) (*cdfg.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return cdfg.Parse(f)
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "design file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	st, err := cdfg.ComputeStats(g)
	if err != nil {
		return err
	}
	fmt.Println(st)
	// Laxity histogram in tenths of the critical path — where the
	// watermark protocols find their eligible nodes.
	cp := st.CriticalPath
	lax, err := g.Laxities()
	if err != nil {
		return err
	}
	hist := make([]int, 11)
	for _, v := range g.Computational() {
		b := 10
		if cp > 0 {
			b = lax[v] * 10 / cp
			if b > 10 {
				b = 10
			}
		}
		hist[b]++
	}
	fmt.Println("laxity histogram (fraction of critical path):")
	for b, c := range hist {
		if c > 0 {
			fmt.Printf("  %3d%%-%3d%%: %d ops\n", b*10, (b+1)*10, c)
		}
	}
	return nil
}

// recordFile is the JSON envelope for detection records. Family labels
// the watermark family the records belong to; omitted for scheduling
// records, so sched record files are byte-identical to what earlier
// releases wrote (and the Record tail fields are omitempty for the same
// reason).
type recordFile struct {
	Signature []byte          `json:"signature"`
	Family    string          `json:"family,omitempty"`
	Records   []lwmapi.Record `json:"records"`
}

func cmdEmbed(args []string) error {
	fs := flag.NewFlagSet("embed", flag.ExitOnError)
	in := fs.String("in", "", "design file")
	sig := fs.String("sig", "", "author signature")
	n := fs.Int("n", 2, "number of local watermarks")
	tau := fs.Int("tau", 20, "subtree cardinality τ")
	k := fs.Int("k", 4, "temporal edges per watermark K")
	eps := fs.Float64("epsilon", 0.25, "laxity margin ε")
	budget := fs.Int("budget", 0, "control-step budget (0: critical path + 10%)")
	workers := fs.Int("workers", 1, "parallel embedding workers (result is identical for any value)")
	out := fs.String("out", "", "marked design output file")
	solPath := fs.String("solution", "", "marked solution output file (tmwm: template cover; gcolor: coloring)")
	recPath := fs.String("record", "", "detection record output file (JSON)")
	remote := fs.String("remote", "", "lwmd daemon address (empty: embed in-process)")
	apiKeyFlag(fs)
	ref := fs.String("ref", "", "design registry reference in place of -in (remote only; see lwm design put)")
	fam := familyFlag(fs)
	trace := fs.Bool("trace", false, "print the span tree (engine stages, oracle recomputes, remote attempts) to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkRefFlag(*ref, *remote); err != nil {
		return err
	}
	ctx, finishTrace := traceCtx(*trace)
	defer finishTrace()
	if f := lwmapi.CanonicalFamily(*fam); f != lwmapi.FamilySched {
		return familyEmbed(ctx, f, *remote, *in, *ref, *sig,
			markParamsFrom(fs, n, tau, k, eps, budget, workers), *out, *solPath, *recPath)
	}
	if *solPath != "" {
		return fmt.Errorf("-solution only applies to -family tmwm or gcolor (scheduling watermarks live in the marked design)")
	}
	if *remote != "" {
		return remoteEmbed(ctx, *remote, *in, *ref, *sig, *n, *tau, *k, *eps, *budget, *workers, *out, *recPath)
	}
	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	if *budget == 0 {
		cp, err := g.CriticalPath()
		if err != nil {
			return err
		}
		*budget = cp + cp/10 + 1
	}
	observeGraph(ctx, g)
	cfg := schedwm.Config{Tau: *tau, K: *k, Epsilon: *eps, Budget: *budget, Parallelism: *workers}
	wms, err := engine.EmbedManyCtx(ctx, g, prng.Signature(*sig), cfg, *n, *workers)
	if err != nil {
		return err
	}
	rf := recordFile{Signature: []byte(*sig)}
	edges := 0
	for _, wm := range wms {
		rf.Records = append(rf.Records, lwmapi.FromSchedRecord(wm.Record()))
		edges += len(wm.Edges)
	}
	fmt.Printf("embedded %d watermarks, %d temporal edges\n", len(wms), edges)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := cdfg.Write(f, g); err != nil {
			return err
		}
	}
	if *recPath != "" {
		data, err := json.MarshalIndent(rf, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*recPath, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func cmdSchedule(args []string) error {
	fs := flag.NewFlagSet("schedule", flag.ExitOnError)
	in := fs.String("in", "", "design file (may contain temporal edges)")
	out := fs.String("out", "", "schedule output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	s, err := sched.ListSchedule(g, sched.ListOpts{UseTemporal: true})
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return sched.WriteSchedule(w, g, s)
}

// parseSchedule reads a schedule file in the text format shared with the
// lwmd daemon (see sched.ParseSchedule).
func parseSchedule(g *cdfg.Graph, path string) (*sched.Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sched.ParseSchedule(g, f)
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	in := fs.String("in", "", "suspect design file")
	schedPath := fs.String("schedule", "", "suspect schedule file")
	recPath := fs.String("record", "", "detection record file (JSON)")
	workers := fs.Int("workers", 1, "parallel detection workers (output is identical for any value)")
	remote := fs.String("remote", "", "lwmd daemon address (empty: detect in-process)")
	apiKeyFlag(fs)
	ref := fs.String("ref", "", "design registry reference in place of -in (remote only; see lwm design put)")
	fam := familyFlag(fs)
	trace := fs.Bool("trace", false, "print the span tree (engine stages, oracle recomputes, remote attempts) to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkRefFlag(*ref, *remote); err != nil {
		return err
	}
	ctx, finishTrace := traceCtx(*trace)
	defer finishTrace()
	if f := lwmapi.CanonicalFamily(*fam); f != lwmapi.FamilySched {
		return familyDetect(ctx, f, *remote, *in, *ref, *schedPath, *recPath, *workers)
	}
	if *remote != "" {
		return remoteDetect(ctx, *remote, *in, *ref, *schedPath, *recPath, *workers)
	}
	// The record file's family label is checked before the suspect parses:
	// a family-labeled record file means the suspect artifacts are that
	// family's formats, and "pass -family" beats a codec parse error.
	data, err := os.ReadFile(*recPath)
	if err != nil {
		return err
	}
	var rf recordFile
	if err := json.Unmarshal(data, &rf); err != nil {
		return err
	}
	if fam := lwmapi.CanonicalFamily(rf.Family); fam != lwmapi.FamilySched {
		return fmt.Errorf("record file is for family %q; pass -family %s", rf.Family, rf.Family)
	}
	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	s, err := parseSchedule(g, *schedPath)
	if err != nil {
		return err
	}
	observeGraph(ctx, g)
	// All records scan on the pool; the report below walks the results in
	// record order, so the output matches a sequential scan byte for byte.
	batch := engine.DetectBatchCtx(ctx, []engine.Suspect{{Graph: g, Schedule: s}}, lwmapi.SchedRecords(rf.Records), *workers)
	found := 0
	for i := range rf.Records {
		det, err := batch[0][i].Det, batch[0][i].Err
		if err != nil {
			return err
		}
		if det.Found {
			found++
			fmt.Printf("watermark %d: FOUND at root %s (%d constraints, Pc %v)\n",
				i, g.Node(det.Matches[0].Root).Name, det.Best.Total, det.Best.Pc)
		} else {
			fmt.Printf("watermark %d: not found (best %d/%d)\n",
				i, det.Best.Satisfied, det.Best.Total)
		}
	}
	fmt.Printf("%d of %d watermarks detected\n", found, len(rf.Records))
	if found == 0 {
		flushTrace(ctx)
		os.Exit(3)
	}
	return nil
}
