package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"localwm/internal/server"
)

func TestGenGcolorDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.gcol")
	b := filepath.Join(dir, "b.gcol")
	args := []string{"-family", "gcolor", "-design", "gen-test", "-nodes", "24", "-density", "20"}
	if err := cmdGen(append(args, "-o", a)); err != nil {
		t.Fatal(err)
	}
	if err := cmdGen(append(args, "-o", b)); err != nil {
		t.Fatal(err)
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Fatal("same seed generated different graphs")
	}
	if !strings.HasPrefix(string(da), "gcolor v1\n") {
		t.Fatalf("not a gcolor instance:\n%s", da)
	}
	// Unknown family, and the seed requirement.
	if err := cmdGen([]string{"-family", "nosuch", "-design", "x"}); err == nil {
		t.Fatal("unknown family accepted")
	}
	if err := cmdGen([]string{"-family", "gcolor"}); err == nil {
		t.Fatal("gcolor gen without a seed accepted")
	}
}

// TestCmdFamiliesLocalMatchesRemote: the families listing is identical
// whether read from the built-in registry or from a daemon of this build.
func TestCmdFamiliesLocalMatchesRemote(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	local := captureStdout(t, func() error { return cmdFamilies(nil) })
	remote := captureStdout(t, func() error { return cmdFamilies([]string{"-remote", ts.URL}) })
	if local != remote {
		t.Fatalf("listings diverged:\nlocal:\n%s\nremote:\n%s", local, remote)
	}
	for _, want := range []string{"sched (default):", "tmwm:", "gcolor:", "capabilities: batch=true"} {
		if !strings.Contains(local, want) {
			t.Errorf("listing missing %q:\n%s", want, local)
		}
	}
}

// TestFamilyRemoteMatchesLocal is the family-mode half of the CLI
// byte-identity contract: for tmwm and gcolor, embed → detect → verify
// through a real daemon print the same reports and write the same
// artifacts as the in-process runs.
func TestFamilyRemoteMatchesLocal(t *testing.T) {
	srv := server.New(server.Config{EngineWorkers: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, fam := range []string{"tmwm", "gcolor"} {
		t.Run(fam, func(t *testing.T) {
			dir := t.TempDir()
			design := filepath.Join(dir, "d.txt")
			var genArgs []string
			if fam == "gcolor" {
				genArgs = []string{"-family", "gcolor", "-design", "cli-family", "-nodes", "32", "-density", "15", "-o", design}
			} else {
				genArgs = []string{"-design", "dac", "-o", design}
			}
			if err := cmdGen(genArgs); err != nil {
				t.Fatal(err)
			}

			run := func(mode string, remote ...string) (stdout string, marked, sol, rec []byte) {
				t.Helper()
				markedPath := filepath.Join(dir, mode+".marked")
				solPath := filepath.Join(dir, mode+".sol")
				recPath := filepath.Join(dir, mode+".json")
				embedArgs := append([]string{"-family", fam, "-in", design, "-sig", "family-cli",
					"-out", markedPath, "-solution", solPath, "-record", recPath}, remote...)
				embedOut := captureStdout(t, func() error { return cmdEmbed(embedArgs) })

				detectArgs := append([]string{"-family", fam, "-in", markedPath,
					"-schedule", solPath, "-record", recPath}, remote...)
				detectOut := captureStdout(t, func() error { return cmdDetect(detectArgs) })

				verifyArgs := append([]string{"-family", fam, "-in", markedPath,
					"-schedule", solPath, "-sig", "family-cli"}, remote...)
				verifyOut := captureStdout(t, func() error { return cmdVerify(verifyArgs) })

				read := func(p string) []byte {
					data, err := os.ReadFile(p)
					if err != nil {
						t.Fatal(err)
					}
					return data
				}
				return embedOut + detectOut + verifyOut, read(markedPath), read(solPath), read(recPath)
			}

			localOut, localMarked, localSol, localRec := run("local")
			remoteOut, remoteMarked, remoteSol, remoteRec := run("remote", "-remote", ts.URL)

			if localOut != remoteOut {
				t.Errorf("reports diverged:\nlocal:\n%s\nremote:\n%s", localOut, remoteOut)
			}
			if !bytes.Equal(localMarked, remoteMarked) {
				t.Errorf("marked designs differ:\n%s\nvs\n%s", localMarked, remoteMarked)
			}
			if !bytes.Equal(localSol, remoteSol) {
				t.Errorf("marked solutions differ:\n%s\nvs\n%s", localSol, remoteSol)
			}
			if !bytes.Equal(localRec, remoteRec) {
				t.Errorf("record files differ:\n%s\nvs\n%s", localRec, remoteRec)
			}
			if !strings.Contains(localOut, "verdict: claim verified") {
				t.Errorf("claim not verified:\n%s", localOut)
			}
			if !strings.Contains(localOut, "watermarks detected") {
				t.Errorf("no detection summary:\n%s", localOut)
			}
		})
	}
}

// TestFamilyDetectRejectsMismatchedRecordFile: a record file written by a
// tmwm embed refuses to drive a gcolor detect.
func TestFamilyDetectRejectsMismatchedRecordFile(t *testing.T) {
	dir := t.TempDir()
	design := filepath.Join(dir, "d.cdfg")
	if err := cmdGen([]string{"-design", "dac", "-o", design}); err != nil {
		t.Fatal(err)
	}
	marked := filepath.Join(dir, "m.txt")
	sol := filepath.Join(dir, "s.txt")
	rec := filepath.Join(dir, "r.json")
	_ = captureStdout(t, func() error {
		return cmdEmbed([]string{"-family", "tmwm", "-in", design, "-sig", "mismatch",
			"-out", marked, "-solution", sol, "-record", rec})
	})
	err := cmdDetect([]string{"-family", "gcolor", "-in", marked, "-schedule", sol, "-record", rec})
	if err == nil || !strings.Contains(err.Error(), `record file is for family "tmwm", not "gcolor"`) {
		t.Fatalf("mismatched record file: %v", err)
	}
	// And the sched path refuses a family-labeled record file.
	err = cmdDetect([]string{"-in", design, "-schedule", sol, "-record", rec})
	if err == nil || !strings.Contains(err.Error(), `record file is for family "tmwm"`) {
		t.Fatalf("sched detect with tmwm records: %v", err)
	}
}
