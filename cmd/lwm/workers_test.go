package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// captureStdout runs f with os.Stdout redirected into a pipe and returns
// what it printed. The subcommands report to stdout, so comparing these
// strings across -workers values checks the full CLI surface, not just
// the artifacts.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		buf := make([]byte, 0, 4096)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput: %s", ferr, out)
	}
	return out
}

// workersValues is the satellite's required sweep: the sequential
// baseline, zero, a negative count, and more workers than the host has
// CPUs. Every value must be accepted and produce identical results.
func workersValues() []string {
	return []string{"1", "0", "-4", fmt.Sprint(runtime.NumCPU() + 13)}
}

// TestEmbedWorkersFlagByteIdentical: `lwm embed -workers W` writes
// byte-identical marked designs and records for every W, valid or not.
func TestEmbedWorkersFlagByteIdentical(t *testing.T) {
	dir := t.TempDir()
	design := filepath.Join(dir, "d.cdfg")
	if err := cmdGen([]string{"-design", "dac", "-o", design}); err != nil {
		t.Fatal(err)
	}
	var refMarked, refRec []byte
	var refOut string
	for _, w := range workersValues() {
		marked := filepath.Join(dir, "m"+w+".cdfg")
		rec := filepath.Join(dir, "r"+w+".json")
		out := captureStdout(t, func() error {
			return cmdEmbed([]string{"-in", design, "-sig", "flag-test", "-n", "2",
				"-tau", "16", "-k", "3", "-epsilon", "0.4",
				"-workers", w, "-out", marked, "-record", rec})
		})
		m, err := os.ReadFile(marked)
		if err != nil {
			t.Fatal(err)
		}
		r, err := os.ReadFile(rec)
		if err != nil {
			t.Fatal(err)
		}
		if refMarked == nil {
			refMarked, refRec, refOut = m, r, out
			continue
		}
		if string(m) != string(refMarked) {
			t.Fatalf("-workers %s: marked design diverged", w)
		}
		if string(r) != string(refRec) {
			t.Fatalf("-workers %s: record diverged", w)
		}
		if out != refOut {
			t.Fatalf("-workers %s: report diverged: %q vs %q", w, out, refOut)
		}
	}
}

// TestDetectVerifyWorkersFlagByteIdentical drives detect and verify over
// the same artifacts at every workers value and requires identical
// reports.
func TestDetectVerifyWorkersFlagByteIdentical(t *testing.T) {
	dir := t.TempDir()
	design := filepath.Join(dir, "d.cdfg")
	marked := filepath.Join(dir, "m.cdfg")
	rec := filepath.Join(dir, "r.json")
	schedPath := filepath.Join(dir, "s.txt")
	if err := cmdGen([]string{"-design", "dac", "-o", design}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEmbed([]string{"-in", design, "-sig", "flag-test", "-n", "2",
		"-tau", "16", "-k", "3", "-epsilon", "0.4", "-out", marked, "-record", rec}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSchedule([]string{"-in", marked, "-out", schedPath}); err != nil {
		t.Fatal(err)
	}

	var refDetect, refVerify string
	for _, w := range workersValues() {
		det := captureStdout(t, func() error {
			return cmdDetect([]string{"-in", design, "-schedule", schedPath,
				"-record", rec, "-workers", w})
		})
		ver := captureStdout(t, func() error {
			return cmdVerify([]string{"-in", design, "-schedule", schedPath,
				"-sig", "flag-test", "-n", "2", "-tau", "16", "-k", "3",
				"-epsilon", "0.4", "-workers", w})
		})
		if refDetect == "" {
			refDetect, refVerify = det, ver
			continue
		}
		if det != refDetect {
			t.Fatalf("-workers %s: detect report diverged: %q vs %q", w, det, refDetect)
		}
		if ver != refVerify {
			t.Fatalf("-workers %s: verify report diverged: %q vs %q", w, ver, refVerify)
		}
	}
}
