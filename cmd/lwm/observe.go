// Observatory mode: read a daemon's flight recorder and pprof snapshots.
//
//	lwm trace list -remote <addr> [-endpoint E] [-result R] [-reason K]
//	               [-min-duration D] [-limit N] [-json]
//	lwm trace get  -remote <addr> -id <trace id> [-json]
//	lwm prof list  -remote <addr>
//	lwm prof get   -remote <addr> -name <snapshot> [-o out.pprof]
//	lwm prof diff  -remote <addr> -a <snapshot> -b <snapshot> [-top N]
//	               [-type cpu|inuse_space|alloc_space|...]
//
// trace list prints one line per retained trace; trace get renders the
// full span tree with stage timings and engine counter deltas (-json for
// the raw entry). prof diff fetches both snapshots, aggregates flat
// per-symbol values with the built-in pprof reader, and prints the top-N
// symbol delta table — no `go tool pprof` required.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"localwm/internal/obs/pprofparse"
	"localwm/lwmclient"
)

func cmdTrace(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: lwm trace {list|get} -remote <addr> [flags]")
	}
	switch args[0] {
	case "list":
		return cmdTraceList(args[1:])
	case "get":
		return cmdTraceGet(args[1:])
	default:
		return fmt.Errorf("unknown trace subcommand %q (want list or get)", args[0])
	}
}

func cmdTraceList(args []string) error {
	fs := flag.NewFlagSet("trace list", flag.ExitOnError)
	remote := fs.String("remote", "", "lwmd daemon address")
	apiKeyFlag(fs)
	endpoint := fs.String("endpoint", "", "filter by endpoint name (embed, detect, ...)")
	result := fs.String("result", "", "filter by result class (ok, error, timeout, ...)")
	reason := fs.String("reason", "", "filter by keep reason (error, slow, sampled)")
	minDur := fs.Duration("min-duration", 0, "keep only traces at least this slow")
	limit := fs.Int("limit", 0, "max entries (0: daemon default)")
	asJSON := fs.Bool("json", false, "print the raw JSON entries")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *remote == "" {
		return fmt.Errorf("trace list: -remote required")
	}
	c, err := newRemoteClient(*remote)
	if err != nil {
		return err
	}
	traces, err := c.ListTraces(context.Background(), lwmclient.TraceFilter{
		Endpoint: *endpoint, Result: *result, KeepReason: *reason,
		MinDuration: *minDur, Limit: *limit,
	})
	if err != nil {
		return err
	}
	if *asJSON {
		out, err := json.MarshalIndent(traces, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	for _, e := range traces {
		line := fmt.Sprintf("%s  %-8s %-7s %3d  %9s  kept=%s",
			e.ID, e.Endpoint, e.Result, e.Status,
			time.Duration(e.DurationNanos).Round(time.Microsecond), e.KeepReason)
		if e.Tenant != "" {
			line += "  tenant=" + e.Tenant
		}
		fmt.Println(line)
	}
	fmt.Fprintf(os.Stderr, "%d traces\n", len(traces))
	return nil
}

func cmdTraceGet(args []string) error {
	fs := flag.NewFlagSet("trace get", flag.ExitOnError)
	remote := fs.String("remote", "", "lwmd daemon address")
	apiKeyFlag(fs)
	id := fs.String("id", "", "trace ID (see lwm trace list)")
	asJSON := fs.Bool("json", false, "print the raw JSON entry")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *remote == "" || *id == "" {
		return fmt.Errorf("trace get: -remote and -id required")
	}
	c, err := newRemoteClient(*remote)
	if err != nil {
		return err
	}
	e, err := c.GetTrace(context.Background(), *id)
	if err != nil {
		return err
	}
	if *asJSON {
		out, err := json.MarshalIndent(e, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	fmt.Printf("trace %s: %s %s (%d), kept=%s\n", e.ID, e.Endpoint, e.Result, e.Status, e.KeepReason)
	if e.Tenant != "" {
		fmt.Printf("  tenant:     %s\n", e.Tenant)
	}
	if e.DesignRef != "" {
		fmt.Printf("  design_ref: %s\n", e.DesignRef)
	}
	if e.Error != "" {
		fmt.Printf("  error:      %s\n", e.Error)
	}
	fmt.Printf("  start:      %s\n", time.Unix(0, e.StartUnixNano).UTC().Format(time.RFC3339Nano))
	fmt.Printf("  total %s  queue-wait %s  run %s\n",
		time.Duration(e.DurationNanos).Round(time.Microsecond),
		time.Duration(e.QueueWaitNanos).Round(time.Microsecond),
		time.Duration(e.RunNanos).Round(time.Microsecond))
	if len(e.EngineCounters) > 0 {
		parts := make([]string, 0, len(e.EngineCounters))
		for k, v := range e.EngineCounters {
			parts = append(parts, fmt.Sprintf("%s+%d", k, v))
		}
		// Map order varies; sort for stable output.
		for i := 0; i < len(parts); i++ {
			for j := i + 1; j < len(parts); j++ {
				if parts[j] < parts[i] {
					parts[i], parts[j] = parts[j], parts[i]
				}
			}
		}
		fmt.Printf("  engine:     %s\n", strings.Join(parts, " "))
	}
	if len(e.Spans) > 0 {
		fmt.Println("  spans:")
		for _, sp := range e.Spans {
			printSpan(sp, 2)
		}
	}
	return nil
}

// printSpan renders one span subtree, two spaces per depth level.
func printSpan(sp lwmclient.TraceSpan, depth int) {
	fmt.Printf("%s%s %s\n", strings.Repeat("  ", depth), sp.Name,
		time.Duration(sp.DurationNanos).Round(time.Microsecond))
	for _, ch := range sp.Children {
		printSpan(ch, depth+1)
	}
}

func cmdProf(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: lwm prof {list|get|diff} -remote <addr> [flags]")
	}
	switch args[0] {
	case "list":
		return cmdProfList(args[1:])
	case "get":
		return cmdProfGet(args[1:])
	case "diff":
		return cmdProfDiff(args[1:])
	default:
		return fmt.Errorf("unknown prof subcommand %q (want list, get, or diff)", args[0])
	}
}

func cmdProfList(args []string) error {
	fs := flag.NewFlagSet("prof list", flag.ExitOnError)
	remote := fs.String("remote", "", "lwmd daemon address")
	apiKeyFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *remote == "" {
		return fmt.Errorf("prof list: -remote required")
	}
	c, err := newRemoteClient(*remote)
	if err != nil {
		return err
	}
	profs, err := c.ListProfiles(context.Background())
	if err != nil {
		return err
	}
	for _, p := range profs {
		fmt.Printf("%-40s %-7s %8d bytes  %s\n", p.Name, p.Kind, p.SizeBytes,
			time.Unix(p.ModTimeUnix, 0).UTC().Format(time.RFC3339))
	}
	fmt.Fprintf(os.Stderr, "%d snapshots\n", len(profs))
	return nil
}

func cmdProfGet(args []string) error {
	fs := flag.NewFlagSet("prof get", flag.ExitOnError)
	remote := fs.String("remote", "", "lwmd daemon address")
	apiKeyFlag(fs)
	name := fs.String("name", "", "snapshot name (see lwm prof list)")
	out := fs.String("o", "", "output file (default: the snapshot name in the current directory)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *remote == "" || *name == "" {
		return fmt.Errorf("prof get: -remote and -name required")
	}
	c, err := newRemoteClient(*remote)
	if err != nil {
		return err
	}
	raw, err := c.GetProfile(context.Background(), *name)
	if err != nil {
		return err
	}
	dst := *out
	if dst == "" {
		dst = *name
	}
	if err := os.WriteFile(dst, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: %d bytes\n", dst, len(raw))
	return nil
}

func cmdProfDiff(args []string) error {
	fs := flag.NewFlagSet("prof diff", flag.ExitOnError)
	remote := fs.String("remote", "", "lwmd daemon address")
	apiKeyFlag(fs)
	aName := fs.String("a", "", "baseline snapshot name")
	bName := fs.String("b", "", "comparison snapshot name")
	top := fs.Int("top", 15, "rows in the delta table")
	typ := fs.String("type", "", "sample dimension to diff (default: the profile's natural one — cpu, inuse_space, ...)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Positional form: lwm prof diff -remote ADDR <a> <b>.
	rest := fs.Args()
	if *aName == "" && len(rest) > 0 {
		*aName = rest[0]
		rest = rest[1:]
	}
	if *bName == "" && len(rest) > 0 {
		*bName = rest[0]
	}
	if *remote == "" || *aName == "" || *bName == "" {
		return fmt.Errorf("prof diff: -remote and two snapshot names (-a/-b or positional) required")
	}
	c, err := newRemoteClient(*remote)
	if err != nil {
		return err
	}
	ctx := context.Background()
	rawA, err := c.GetProfile(ctx, *aName)
	if err != nil {
		return fmt.Errorf("prof diff: fetching %s: %w", *aName, err)
	}
	rawB, err := c.GetProfile(ctx, *bName)
	if err != nil {
		return fmt.Errorf("prof diff: fetching %s: %w", *bName, err)
	}
	pa, err := pprofparse.Parse(rawA)
	if err != nil {
		return fmt.Errorf("prof diff: parsing %s: %w", *aName, err)
	}
	pb, err := pprofparse.Parse(rawB)
	if err != nil {
		return fmt.Errorf("prof diff: parsing %s: %w", *bName, err)
	}
	dim := *typ
	if dim == "" {
		dim = pa.SampleTypes[pa.DefaultValueIndex()].Type
	}
	rows, err := pprofparse.Diff(pa, pb, dim, *top)
	if err != nil {
		return err
	}
	unit := pa.Unit(pa.ValueIndex(dim))
	fmt.Printf("prof diff %s -> %s (%s, %s)\n", *aName, *bName, dim, unit)
	fmt.Printf("%14s %14s %14s  symbol\n", "A", "B", "delta")
	for _, r := range rows {
		fmt.Printf("%14d %14d %+14d  %s\n", r.A, r.B, r.Delta, r.Name)
	}
	return nil
}
