// Robustness campaigns from the CLI:
//
//	lwm robust -in design.cdfg -sig <signature> [-seed S] [-battery spec.json]
//	    run the attack campaign offline: re-mark the design, execute the
//	    battery in-process, and print the report envelope — byte-identical
//	    to what a daemon answers for the same request
//	lwm robust -remote <addr> [-ref <reference>] ...
//	    run the campaign on a lwmd daemon; large campaigns (or -async) are
//	    queued, and -wait=false prints the job ID alone on stdout for
//	    scripting (collect it later with `lwm job wait`)
//
// The battery spec file holds a lwmapi.BatterySpec JSON document; absent,
// the default battery runs (perturb, crop, renumber, reschedule, host).
// The same spec file drives local, synchronous-remote, and queued-remote
// campaigns to the same report bytes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"localwm/internal/prng"
	"localwm/internal/robust"
	"localwm/internal/schedwm"
	"localwm/lwmapi"
	"localwm/lwmclient"
)

func cmdRobust(args []string) error {
	fs := flag.NewFlagSet("robust", flag.ExitOnError)
	in := fs.String("in", "", "design file")
	ref := fs.String("ref", "", "design registry reference instead of -in (remote only)")
	sig := fs.String("sig", "", "owner signature the watermarks derive from")
	seed := fs.String("seed", "", "campaign seed keying every attack's randomness")
	batteryPath := fs.String("battery", "", "battery spec file (BatterySpec JSON; default battery when empty)")
	n := fs.Int("n", 2, "watermarks to embed")
	tau := fs.Int("tau", 20, "constraints per watermark")
	k := fs.Int("k", 4, "locality radius")
	eps := fs.Float64("epsilon", 0.25, "laxity fraction")
	budget := fs.Int("budget", 0, "control-step budget (0: critical path + 10%)")
	workers := fs.Int("workers", 0, "campaign parallelism (0: sequential)")
	out := fs.String("o", "", "report file (default stdout)")
	remote := fs.String("remote", "", "lwmd daemon address (empty: run the campaign in-process)")
	apiKeyFlag(fs)
	async := fs.Bool("async", false, "force dispatch through the daemon's job queue (remote only)")
	wait := fs.Bool("wait", true, "block on a queued campaign; false prints the job ID alone on stdout")
	timeout := fs.Duration("timeout", 30*time.Minute, "max time to wait for a queued campaign")
	trace := fs.Bool("trace", false, "print the span tree to stderr after the report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sig == "" {
		return fmt.Errorf("robust: -sig required")
	}
	if err := checkRefFlag(*ref, *remote); err != nil {
		return err
	}
	if *async && *remote == "" {
		return fmt.Errorf("robust: -async requires -remote (local campaigns always run to completion)")
	}

	battery, err := loadBattery(*batteryPath)
	if err != nil {
		return err
	}

	ctx, finish := traceCtx(*trace)
	defer finish()

	if *remote != "" {
		return remoteRobust(ctx, *remote, *in, *ref, *sig, *seed, battery,
			*n, *tau, *k, *eps, *budget, *workers, *async, *wait, *timeout, *out)
	}

	// Local mode: the same normalize → prepare → run pipeline the daemon
	// executes, with the daemon's parameter defaults, so the printed
	// envelope is byte-identical to a daemon's answer for this request.
	battery, err = robust.Normalize(battery)
	if err != nil {
		return fmt.Errorf("robust: battery: %v", err)
	}
	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	observeGraph(ctx, g)
	if *budget == 0 {
		cp, err := g.CriticalPath()
		if err != nil {
			return err
		}
		*budget = cp + cp/10 + 1
	}
	cfg := schedwm.Config{Tau: *tau, K: *k, Epsilon: *eps, Budget: *budget, Parallelism: *workers}
	base, err := robust.Prepare(ctx, g, prng.Signature(*sig), cfg, *n, *workers)
	if err != nil {
		return fmt.Errorf("robust: embedding: %v", err)
	}
	rep, err := robust.Run(ctx, &robust.Campaign{
		Baseline: base,
		Seed:     *seed,
		Battery:  battery,
		Workers:  *workers,
	})
	if err != nil {
		return fmt.Errorf("robust: campaign: %v", err)
	}
	fmt.Fprintf(os.Stderr, "campaign: %d localities, %d units, %d families\n",
		rep.Localities, rep.Units, len(rep.Families))
	return writeReport(*out, &lwmapi.RobustnessResponse{Report: rep})
}

// loadBattery reads a BatterySpec JSON file; an empty path selects the
// zero spec (Normalize fills in the default battery).
func loadBattery(path string) (lwmapi.BatterySpec, error) {
	var b lwmapi.BatterySpec
	if path == "" {
		return b, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("robust: parsing %s: %w", path, err)
	}
	return b, nil
}

// writeReport renders the response envelope exactly as the daemon does
// (two-space indent, trailing newline), to a file or stdout.
func writeReport(path string, v any) error {
	var f *os.File
	if path == "" {
		f = os.Stdout
	} else {
		var err error
		f, err = os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// remoteRobust runs the campaign on a daemon. A synchronous answer
// prints the report envelope; a queued answer either blocks for the
// result bytes (-wait, the default) or prints the job ID alone on
// stdout so scripts can collect it later.
func remoteRobust(ctx context.Context, addr, in, ref, sig, seed string, battery lwmapi.BatterySpec,
	n, tau, k int, eps float64, budget, workers int, async, wait bool, timeout time.Duration, out string) error {
	c, err := newRemoteClient(addr)
	if err != nil {
		return err
	}
	design, err := designSource(in, ref)
	if err != nil {
		return err
	}
	resp, err := c.RunCampaign(ctx, lwmclient.RobustnessRequest{
		Design:    design,
		DesignRef: ref,
		Signature: sig,
		MarkParams: lwmclient.MarkParams{
			N: n, Tau: tau, K: k, Epsilon: eps, Budget: budget, Workers: workers,
		},
		Seed:    seed,
		Battery: battery,
		Async:   async,
	})
	if err != nil {
		return err
	}
	if resp.Report != nil {
		fmt.Fprintf(os.Stderr, "campaign: %d localities, %d units, %d families\n",
			resp.Report.Localities, resp.Report.Units, len(resp.Report.Families))
		return writeReport(out, resp)
	}
	if resp.Job == nil {
		return fmt.Errorf("robust: daemon answered neither report nor job")
	}
	if !wait {
		fmt.Fprintf(os.Stderr, "campaign queued as job %s (%s)\n", resp.Job.ID, resp.Job.State)
		fmt.Println(resp.Job.ID)
		return nil
	}
	wctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	// The stored result bytes are the same envelope the synchronous path
	// prints; write them verbatim to keep the byte-identity contract.
	raw, err := c.WaitJobResult(wctx, resp.Job.ID)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "campaign job %s: done, %d result bytes\n", resp.Job.ID, len(raw))
	if out == "" {
		_, err := os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(out, raw, 0o644)
}
