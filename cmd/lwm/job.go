// Async job mode: submit embed/detect/verify work to a daemon's durable
// job queue instead of waiting on the synchronous endpoints.
//
//	lwm job submit -remote <addr> -payload job.json           # raw JobRequest
//	lwm job submit -remote <addr> -kind embed -in design.cdfg \
//	    -sig alice [-webhook URL] [-idempotency-key K]        # convenience
//	lwm job status -remote <addr> -id <job id>
//	lwm job wait   -remote <addr> -id <job id> [-out result.json]
//
// submit prints the job ID alone on stdout (JOB=$(lwm job submit ...) is
// the scripting idiom), with the human summary on stderr. wait blocks
// until the job is terminal and writes the result bytes verbatim — byte-
// identical to the synchronous endpoint's response body — to -out (or
// stdout), exiting 1 with the job's error if it failed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"localwm/lwmclient"
)

func cmdJob(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: lwm job {submit|status|wait} -remote <addr> [flags]")
	}
	switch args[0] {
	case "submit":
		return cmdJobSubmit(args[1:])
	case "status":
		return cmdJobStatus(args[1:])
	case "wait":
		return cmdJobWait(args[1:])
	default:
		return fmt.Errorf("unknown job subcommand %q (want submit, status, or wait)", args[0])
	}
}

func cmdJobSubmit(args []string) error {
	fs := flag.NewFlagSet("job submit", flag.ExitOnError)
	remote := fs.String("remote", "", "lwmd daemon address")
	apiKeyFlag(fs)
	payload := fs.String("payload", "", "file holding a raw JobRequest JSON document")
	kind := fs.String("kind", "", "job kind for the convenience form: embed or verify")
	in := fs.String("in", "", "design file (convenience form)")
	ref := fs.String("ref", "", "design registry reference instead of -in (convenience form)")
	sig := fs.String("sig", "", "owner signature (convenience form)")
	schedPath := fs.String("sched", "", "schedule file (verify only)")
	n := fs.Int("n", 0, "watermarks to embed (0: daemon default)")
	webhook := fs.String("webhook", "", "webhook URL POSTed the terminal status")
	idemKey := fs.String("idempotency-key", "", "submission dedup key (safe resubmits)")
	maxAttempts := fs.Int("max-attempts", 0, "retry budget (0: daemon default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *remote == "" {
		return fmt.Errorf("job submit: -remote required")
	}

	var req lwmclient.JobRequest
	switch {
	case *payload != "":
		data, err := os.ReadFile(*payload)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &req); err != nil {
			return fmt.Errorf("job submit: parsing %s: %w", *payload, err)
		}
	case *kind != "":
		design, err := designSource(*in, *ref)
		if err != nil {
			return err
		}
		switch *kind {
		case "embed":
			req.Kind = "embed"
			req.Embed = &lwmclient.EmbedRequest{
				Design: design, DesignRef: *ref, Signature: *sig,
				MarkParams: lwmclient.MarkParams{N: *n},
			}
		case "verify":
			if *schedPath == "" {
				return fmt.Errorf("job submit: -kind verify requires -sched")
			}
			schedule, err := os.ReadFile(*schedPath)
			if err != nil {
				return err
			}
			req.Kind = "verify"
			req.Verify = &lwmclient.VerifyRequest{
				Design: design, DesignRef: *ref, Schedule: string(schedule),
				Signature: *sig, MarkParams: lwmclient.MarkParams{N: *n},
			}
		default:
			return fmt.Errorf("job submit: convenience form supports -kind embed or verify; use -payload for detect batches")
		}
	default:
		return fmt.Errorf("job submit: -payload or -kind required")
	}
	req.WebhookURL = *webhook
	req.IdempotencyKey = *idemKey
	req.MaxAttempts = *maxAttempts

	c, err := newRemoteClient(*remote)
	if err != nil {
		return err
	}
	st, err := c.SubmitJob(context.Background(), req)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "job %s: %s (kind %s, attempt %d/%d)\n",
		st.ID, st.State, st.Kind, st.Attempt, st.MaxAttempts)
	fmt.Println(st.ID)
	return nil
}

func cmdJobStatus(args []string) error {
	fs := flag.NewFlagSet("job status", flag.ExitOnError)
	remote := fs.String("remote", "", "lwmd daemon address")
	apiKeyFlag(fs)
	id := fs.String("id", "", "job ID")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *remote == "" || *id == "" {
		return fmt.Errorf("job status: -remote and -id required")
	}
	c, err := newRemoteClient(*remote)
	if err != nil {
		return err
	}
	st, err := c.JobStatus(context.Background(), *id)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func cmdJobWait(args []string) error {
	fs := flag.NewFlagSet("job wait", flag.ExitOnError)
	remote := fs.String("remote", "", "lwmd daemon address")
	apiKeyFlag(fs)
	id := fs.String("id", "", "job ID")
	out := fs.String("out", "", "result file (default stdout)")
	timeout := fs.Duration("timeout", 10*time.Minute, "max time to wait for the job")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *remote == "" || *id == "" {
		return fmt.Errorf("job wait: -remote and -id required")
	}
	c, err := newRemoteClient(*remote)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	raw, err := c.WaitJobResult(ctx, *id)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "job %s: done, %d result bytes\n", *id, len(raw))
	if *out == "" {
		os.Stdout.Write(raw)
		return nil
	}
	return os.WriteFile(*out, raw, 0o644)
}
