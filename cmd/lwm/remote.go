// Remote mode: every marking subcommand (embed, detect, verify) accepts
// -remote <addr> and then runs against a lwmd daemon through the
// resilient lwmclient instead of the in-process engine. Outputs are
// byte-identical to local runs — the daemon computes with the same
// engine and the wire carries everything the reports print — so scripts
// can switch between local and remote without changing their parsing.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"localwm/lwmclient"
)

func newRemoteClient(addr string) (*lwmclient.Client, error) {
	return lwmclient.New(lwmclient.Config{BaseURL: addr})
}

// remoteEmbed mirrors cmdEmbed against a daemon: same flags, same
// printed line, same output files (marked design + detection record).
// A trace on ctx (lwm embed -trace -remote ...) collects the client's
// call/attempt spans with server-side stage timings as attributes.
func remoteEmbed(ctx context.Context, addr, in, sig string, n, tau, k int, eps float64, budget, workers int, out, recPath string) error {
	c, err := newRemoteClient(addr)
	if err != nil {
		return err
	}
	design, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	resp, err := c.Embed(ctx, lwmclient.EmbedRequest{
		Design:    string(design),
		Signature: sig,
		MarkParams: lwmclient.MarkParams{
			N: n, Tau: tau, K: k, Epsilon: eps, Budget: budget, Workers: workers,
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("embedded %d watermarks, %d temporal edges\n", resp.Watermarks, resp.TemporalEdges)
	if out != "" {
		if err := os.WriteFile(out, []byte(resp.MarkedDesign), 0o644); err != nil {
			return err
		}
	}
	if recPath != "" {
		rf := recordFile{Signature: []byte(sig), Records: resp.Records}
		data, err := json.MarshalIndent(rf, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(recPath, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// remoteDetect mirrors cmdDetect against a daemon: identical per-record
// report lines and the same exit-3-on-zero-detections contract.
func remoteDetect(ctx context.Context, addr, in, schedPath, recPath string, workers int) error {
	c, err := newRemoteClient(addr)
	if err != nil {
		return err
	}
	design, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	schedule, err := os.ReadFile(schedPath)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(recPath)
	if err != nil {
		return err
	}
	var rf recordFile
	if err := json.Unmarshal(data, &rf); err != nil {
		return err
	}
	res, err := c.Detect(ctx, lwmclient.DetectRequest{
		Suspects: []lwmclient.Suspect{{Design: string(design), Schedule: string(schedule)}},
		Records:  rf.Records,
		Workers:  workers,
	})
	if err != nil {
		return err
	}
	if !res.Complete() {
		return res.Failed[0]
	}
	found := 0
	for i, out := range res.Results[0] {
		if out.Error != "" {
			return fmt.Errorf("%s", out.Error)
		}
		if out.Found {
			found++
			fmt.Printf("watermark %d: FOUND at root %s (%d constraints, Pc %s)\n",
				i, out.Root, out.Total, out.Pc)
		} else {
			fmt.Printf("watermark %d: not found (best %d/%d)\n",
				i, out.Satisfied, out.Total)
		}
	}
	fmt.Printf("%d of %d watermarks detected\n", found, len(rf.Records))
	if found == 0 {
		flushTrace(ctx)
		os.Exit(3)
	}
	return nil
}

// remoteVerify mirrors cmdVerify against a daemon: same claim report and
// the same exit-3-on-unverified contract.
func remoteVerify(ctx context.Context, addr, in, schedPath, sig string, n, tau, k int, eps float64, budget, workers int) error {
	c, err := newRemoteClient(addr)
	if err != nil {
		return err
	}
	design, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	schedule, err := os.ReadFile(schedPath)
	if err != nil {
		return err
	}
	resp, err := c.Verify(ctx, lwmclient.VerifyRequest{
		Design:    string(design),
		Schedule:  string(schedule),
		Signature: sig,
		MarkParams: lwmclient.MarkParams{
			N: n, Tau: tau, K: k, Epsilon: eps, Budget: budget, Workers: workers,
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("claim by %q: %d/%d re-derived constraints satisfied, Pc %s\n",
		sig, resp.Satisfied, resp.Total, resp.Pc)
	if !resp.Verified {
		fmt.Println("verdict: claim NOT verified")
		flushTrace(ctx)
		os.Exit(3)
	}
	fmt.Println("verdict: claim verified")
	return nil
}
