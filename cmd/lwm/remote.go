// Remote mode: every marking subcommand (embed, detect, verify) accepts
// -remote <addr> and then runs against a lwmd daemon through the
// resilient lwmclient instead of the in-process engine. Outputs are
// byte-identical to local runs — the daemon computes with the same
// engine and the wire carries everything the reports print — so scripts
// can switch between local and remote without changing their parsing.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"localwm/lwmclient"
)

// apiKey carries the -api-key flag value into every remote client this
// process builds. One process runs one subcommand, so a single value
// suffices; the LWM_API_KEY environment variable is the default so
// scripts need not repeat the key on every invocation.
var apiKey string

// apiKeyFlag registers -api-key on a remote-capable subcommand.
func apiKeyFlag(fs *flag.FlagSet) {
	fs.StringVar(&apiKey, "api-key", os.Getenv("LWM_API_KEY"),
		"tenant API key for a daemon running -tenants-file (default $LWM_API_KEY)")
}

func newRemoteClient(addr string) (*lwmclient.Client, error) {
	return lwmclient.New(lwmclient.Config{BaseURL: addr, APIKey: apiKey})
}

// checkRefFlag rejects -ref without -remote: references only mean
// something to a daemon's registry; local runs always parse a file.
func checkRefFlag(ref, remote string) error {
	if ref != "" && remote == "" {
		return fmt.Errorf("-ref requires -remote (references resolve in a lwmd daemon's registry)")
	}
	return nil
}

// designSource returns the inline design text and registry reference for
// a marking request: with -ref the text stays empty (the daemon resolves
// the reference), otherwise the design file is read as before.
func designSource(in, ref string) (design string, err error) {
	if ref != "" {
		return "", nil
	}
	data, err := os.ReadFile(in)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// cmdDesign talks to a daemon's content-addressed design registry:
//
//	lwm design put -remote <addr> -in design.cdfg
//	lwm design get -remote <addr> -ref <ref> [-o out.cdfg]
//
// put prints the reference alone on stdout — REF=$(lwm design put ...)
// is the intended scripting idiom — with the human summary on stderr.
func cmdDesign(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: lwm design {put|get} -remote <addr> [flags]")
	}
	switch args[0] {
	case "put":
		return cmdDesignPut(args[1:])
	case "get":
		return cmdDesignGet(args[1:])
	default:
		return fmt.Errorf("unknown design subcommand %q (want put or get)", args[0])
	}
}

func cmdDesignPut(args []string) error {
	fs := flag.NewFlagSet("design put", flag.ExitOnError)
	remote := fs.String("remote", "", "lwmd daemon address")
	apiKeyFlag(fs)
	in := fs.String("in", "", "design file")
	fam := familyFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *remote == "" {
		return fmt.Errorf("design put: -remote required")
	}
	design, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	c, err := newRemoteClient(*remote)
	if err != nil {
		return err
	}
	// The raw flag value goes on the wire: an unset -family stays off the
	// envelope entirely, keeping the request byte-identical to pre-family
	// clients.
	resp, err := c.PutDesignFamily(context.Background(), *fam, string(design))
	if err != nil {
		return err
	}
	verb := "registered"
	if !resp.Created {
		verb = "already registered"
	}
	fmt.Fprintf(os.Stderr, "%s: %d canonical bytes, %d nodes\n", verb, resp.Bytes, resp.Nodes)
	fmt.Println(resp.Ref)
	return nil
}

func cmdDesignGet(args []string) error {
	fs := flag.NewFlagSet("design get", flag.ExitOnError)
	remote := fs.String("remote", "", "lwmd daemon address")
	apiKeyFlag(fs)
	ref := fs.String("ref", "", "design registry reference")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *remote == "" || *ref == "" {
		return fmt.Errorf("design get: -remote and -ref required")
	}
	c, err := newRemoteClient(*remote)
	if err != nil {
		return err
	}
	resp, err := c.GetDesign(context.Background(), *ref)
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Print(resp.Design)
		return nil
	}
	return os.WriteFile(*out, []byte(resp.Design), 0o644)
}

// remoteEmbed mirrors cmdEmbed against a daemon: same flags, same
// printed line, same output files (marked design + detection record).
// A trace on ctx (lwm embed -trace -remote ...) collects the client's
// call/attempt spans with server-side stage timings as attributes.
func remoteEmbed(ctx context.Context, addr, in, ref, sig string, n, tau, k int, eps float64, budget, workers int, out, recPath string) error {
	c, err := newRemoteClient(addr)
	if err != nil {
		return err
	}
	design, err := designSource(in, ref)
	if err != nil {
		return err
	}
	resp, err := c.Embed(ctx, lwmclient.EmbedRequest{
		Design:    design,
		DesignRef: ref,
		Signature: sig,
		MarkParams: lwmclient.MarkParams{
			N: n, Tau: tau, K: k, Epsilon: eps, Budget: budget, Workers: workers,
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("embedded %d watermarks, %d temporal edges\n", resp.Watermarks, resp.TemporalEdges)
	if out != "" {
		if err := os.WriteFile(out, []byte(resp.MarkedDesign), 0o644); err != nil {
			return err
		}
	}
	if recPath != "" {
		rf := recordFile{Signature: []byte(sig), Records: resp.Records}
		data, err := json.MarshalIndent(rf, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(recPath, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// remoteDetect mirrors cmdDetect against a daemon: identical per-record
// report lines and the same exit-3-on-zero-detections contract.
func remoteDetect(ctx context.Context, addr, in, ref, schedPath, recPath string, workers int) error {
	c, err := newRemoteClient(addr)
	if err != nil {
		return err
	}
	design, err := designSource(in, ref)
	if err != nil {
		return err
	}
	schedule, err := os.ReadFile(schedPath)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(recPath)
	if err != nil {
		return err
	}
	var rf recordFile
	if err := json.Unmarshal(data, &rf); err != nil {
		return err
	}
	res, err := c.Detect(ctx, lwmclient.DetectRequest{
		Suspects: []lwmclient.Suspect{{Design: design, DesignRef: ref, Schedule: string(schedule)}},
		Records:  rf.Records,
		Workers:  workers,
	})
	if err != nil {
		return err
	}
	if !res.Complete() {
		return res.Failed[0]
	}
	found := 0
	for i, out := range res.Results[0] {
		if out.Error != "" {
			return fmt.Errorf("%s", out.Error)
		}
		if out.Found {
			found++
			fmt.Printf("watermark %d: FOUND at root %s (%d constraints, Pc %s)\n",
				i, out.Root, out.Total, out.Pc)
		} else {
			fmt.Printf("watermark %d: not found (best %d/%d)\n",
				i, out.Satisfied, out.Total)
		}
	}
	fmt.Printf("%d of %d watermarks detected\n", found, len(rf.Records))
	if found == 0 {
		flushTrace(ctx)
		os.Exit(3)
	}
	return nil
}

// remoteVerify mirrors cmdVerify against a daemon: same claim report and
// the same exit-3-on-unverified contract.
func remoteVerify(ctx context.Context, addr, in, ref, schedPath, sig string, n, tau, k int, eps float64, budget, workers int) error {
	c, err := newRemoteClient(addr)
	if err != nil {
		return err
	}
	design, err := designSource(in, ref)
	if err != nil {
		return err
	}
	schedule, err := os.ReadFile(schedPath)
	if err != nil {
		return err
	}
	resp, err := c.Verify(ctx, lwmclient.VerifyRequest{
		Design:    design,
		DesignRef: ref,
		Schedule:  string(schedule),
		Signature: sig,
		MarkParams: lwmclient.MarkParams{
			N: n, Tau: tau, K: k, Epsilon: eps, Budget: budget, Workers: workers,
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("claim by %q: %d/%d re-derived constraints satisfied, Pc %s\n",
		sig, resp.Satisfied, resp.Total, resp.Pc)
	if !resp.Verified {
		fmt.Println("verdict: claim NOT verified")
		flushTrace(ctx)
		os.Exit(3)
	}
	fmt.Println("verdict: claim verified")
	return nil
}
