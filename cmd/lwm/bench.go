package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"localwm/internal/cdfg"
	"localwm/internal/designs"
	"localwm/internal/engine"
	"localwm/internal/prng"
	"localwm/internal/schedwm"
)

// benchRow is one design's sequential-vs-parallel embedding comparison.
type benchRow struct {
	Design     string  `json:"design"`
	Ops        int     `json:"ops"`
	Watermarks int     `json:"watermarks"`
	SeqNs      int64   `json:"seq_ns"`
	ParNs      int64   `json:"par_ns"`
	Speedup    float64 `json:"speedup"`
	// Identical confirms the parallel run produced byte-for-byte the same
	// marked design as the sequential one — the engine's core guarantee,
	// re-checked on every benchmark run so a regression in either time or
	// determinism shows up in the same artifact.
	Identical bool `json:"identical"`
}

// benchStats is the whole run's engine and oracle counter deltas,
// recorded with -stats: how many worker-pool fan-outs ran, how often
// speculation committed versus repaired, and the PathOracle's cache hit
// rate over the benchmark's workload. Deltas, not absolutes — only this
// run's activity is counted even though the underlying counters are
// process-wide.
type benchStats struct {
	PoolRuns      uint64  `json:"pool_runs"`
	PoolJobs      uint64  `json:"pool_jobs"`
	SpecCommits   uint64  `json:"spec_commits"`
	SpecRepairs   uint64  `json:"spec_repairs"`
	OracleHits    uint64  `json:"oracle_hits"`
	OracleMisses  uint64  `json:"oracle_misses"`
	OracleHitRate float64 `json:"oracle_hit_rate"`
}

// benchFile is the BENCH_parallel.json envelope.
type benchFile struct {
	GoMaxProcs int         `json:"gomaxprocs"`
	NumCPU     int         `json:"numcpu"`
	N          int         `json:"n"`
	Workers    int         `json:"workers"`
	Iters      int         `json:"iters"`
	Rows       []benchRow  `json:"rows"`
	Stats      *benchStats `json:"stats,omitempty"`
}

// cmdBench is the benchmark regression harness: it embeds n watermarks in
// every registry design sequentially and on the parallel engine, reports
// the better-of-iters wall times and the speedup, verifies bit-identity of
// the two marked designs, and writes the whole comparison as JSON.
//
// Speedups are bounded by the host: on a single-CPU container the parallel
// engine can only pay speculation overhead, which is exactly what the
// harness should record there.
//
// With -store the harness instead benchmarks the daemon's design
// registry — repeat remote detects inline versus by reference — and
// writes BENCH_store.json; see benchStore.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	n := fs.Int("n", 16, "watermarks per design (-store default: 2)")
	workers := fs.Int("workers", runtime.NumCPU(), "parallel engine workers")
	iters := fs.Int("iters", 3, "timing iterations (best is reported)")
	all := fs.Bool("all", false, "include the largest designs (slow)")
	out := fs.String("o", "", "output file (default BENCH_parallel.json, or BENCH_store.json with -store)")
	gate := fs.String("gate", "", "baseline BENCH_parallel.json to gate against: fail when identity regresses or host-normalized embed throughput drops >20%")
	stats := fs.Bool("stats", false, "record engine/oracle counter deltas (pool fan-outs, speculation commits/repairs, oracle hit rate) in the output")
	storeMode := fs.Bool("store", false, "benchmark the design registry instead: repeat remote detects inline vs by reference")
	remote := fs.String("remote", "", "lwmd daemon address for -store (empty: boot an in-process daemon)")
	apiKeyFlag(fs)
	repeats := fs.Int("repeats", 12, "detect calls per timing loop in -store mode")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeMode {
		bn := 2
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "n" {
				bn = *n
			}
		})
		if *out == "" {
			*out = "BENCH_store.json"
		}
		return benchStore(*remote, bn, *repeats, *iters, *out)
	}
	if *out == "" {
		*out = "BENCH_parallel.json"
	}

	engBefore := engine.Stats()
	hitsBefore, missesBefore := cdfg.OracleStats()

	type entry struct {
		name  string
		build func() *cdfg.Graph
	}
	entries := []entry{{"4th Order Parallel IIR", designs.FourthOrderParallelIIR}}
	for _, row := range designs.Table2() {
		if row.Name == "Long Echo Canceler" && !*all {
			continue
		}
		entries = append(entries, entry{row.Name, row.Build})
	}
	mb := designs.MediaBench()[1]
	entries = append(entries, entry{"mediabench/" + mb.Name, func() *cdfg.Graph { return designs.Layered(mb.Cfg) }})

	bf := benchFile{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		N: *n, Workers: *workers, Iters: *iters}
	for _, e := range entries {
		g := e.build()
		cp, err := g.CriticalPath()
		if err != nil {
			return err
		}
		cfg := schedwm.Config{Tau: 14, K: 3, Epsilon: 0.1, Budget: cp + cp/2 + 2}
		row := benchRow{Design: e.name, Ops: len(g.Computational())}

		var seqDump, parDump []byte
		time1 := func(parallel bool) (time.Duration, []byte, int, error) {
			best := time.Duration(0)
			var dump []byte
			wmCount := 0
			for it := 0; it < *iters; it++ {
				work := g.Clone()
				start := time.Now()
				var wms []*schedwm.Watermark
				var err error
				if parallel {
					wms, err = engine.EmbedMany(work, prng.Signature("alice"), cfg, *n, *workers)
				} else {
					wms, err = schedwm.EmbedMany(work, prng.Signature("alice"), cfg, *n)
				}
				el := time.Since(start)
				if err != nil {
					return 0, nil, 0, fmt.Errorf("%s: %v", e.name, err)
				}
				if best == 0 || el < best {
					best = el
				}
				wmCount = len(wms)
				var buf bytes.Buffer
				if err := cdfg.Write(&buf, work); err != nil {
					return 0, nil, 0, err
				}
				dump = buf.Bytes()
			}
			return best, dump, wmCount, nil
		}
		seq, sd, wmN, err := time1(false)
		if err != nil {
			return err
		}
		seqDump = sd
		par, pd, _, err := time1(true)
		if err != nil {
			return err
		}
		parDump = pd
		row.Watermarks = wmN
		row.SeqNs = seq.Nanoseconds()
		row.ParNs = par.Nanoseconds()
		if par > 0 {
			row.Speedup = float64(seq.Nanoseconds()) / float64(par.Nanoseconds())
		}
		row.Identical = bytes.Equal(seqDump, parDump)
		bf.Rows = append(bf.Rows, row)
		fmt.Printf("%-28s ops %4d  wm %2d  seq %10s  par(%d) %10s  x%.2f  identical=%v\n",
			e.name, row.Ops, row.Watermarks, seq, *workers, par, row.Speedup, row.Identical)
		if !row.Identical {
			return fmt.Errorf("%s: parallel embedding diverged from sequential", e.name)
		}
	}

	if *stats {
		engAfter := engine.Stats()
		hitsAfter, missesAfter := cdfg.OracleStats()
		st := &benchStats{
			PoolRuns:     engAfter.PoolRuns - engBefore.PoolRuns,
			PoolJobs:     engAfter.PoolJobs - engBefore.PoolJobs,
			SpecCommits:  engAfter.SpecCommits - engBefore.SpecCommits,
			SpecRepairs:  engAfter.SpecRepairs - engBefore.SpecRepairs,
			OracleHits:   hitsAfter - hitsBefore,
			OracleMisses: missesAfter - missesBefore,
		}
		if lookups := st.OracleHits + st.OracleMisses; lookups > 0 {
			st.OracleHitRate = float64(st.OracleHits) / float64(lookups)
		}
		bf.Stats = st
		fmt.Printf("engine: %d pool runs, %d jobs, %d spec commits, %d repairs; oracle: %d hits / %d misses (%.1f%% hit rate)\n",
			st.PoolRuns, st.PoolJobs, st.SpecCommits, st.SpecRepairs,
			st.OracleHits, st.OracleMisses, 100*st.OracleHitRate)
	}

	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	if *gate != "" {
		return gateAgainst(*gate, &bf)
	}
	return nil
}

// gateThroughputDrop is the tolerated regression of host-normalized embed
// throughput before the gate fails: 20%, i.e. new must be >= 0.8 × base.
const gateThroughputDrop = 0.20

// gateAgainst compares a fresh benchmark run to a checked-in baseline and
// fails on either of two regressions:
//
//   - byte-identity: any design whose parallel embedding diverged from the
//     sequential one, in either run (cmdBench already hard-fails the fresh
//     run; the baseline check catches a corrupted artifact);
//   - embed throughput: a design's parallel-engine throughput dropped more
//     than gateThroughputDrop versus the baseline, measured host-
//     normalized — throughput is counted relative to the same run's
//     sequential time (i.e. the speedup seq_ns/par_ns), so a slower or
//     busier CI host shifts both sides equally instead of tripping the
//     gate.
//
// Designs are matched by name; ones present on only one side are skipped
// (the design set may legitimately grow), but a gate with zero comparable
// designs fails as misconfigured.
func gateAgainst(path string, fresh *benchFile) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench gate: %v", err)
	}
	var base benchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench gate: parsing %s: %v", path, err)
	}
	baseRows := make(map[string]benchRow, len(base.Rows))
	for _, r := range base.Rows {
		baseRows[r.Design] = r
	}
	compared, failures := 0, 0
	for _, now := range fresh.Rows {
		was, ok := baseRows[now.Design]
		if !ok {
			continue
		}
		compared++
		if !was.Identical || !now.Identical {
			fmt.Printf("bench gate: FAIL %-28s byte-identity regressed (base %v, now %v)\n",
				now.Design, was.Identical, now.Identical)
			failures++
			continue
		}
		if was.ParNs <= 0 || now.ParNs <= 0 || was.SeqNs <= 0 || now.SeqNs <= 0 {
			continue // degenerate timing; nothing sound to compare
		}
		baseSpeedup := float64(was.SeqNs) / float64(was.ParNs)
		nowSpeedup := float64(now.SeqNs) / float64(now.ParNs)
		if nowSpeedup < (1-gateThroughputDrop)*baseSpeedup {
			fmt.Printf("bench gate: FAIL %-28s normalized throughput x%.2f, baseline x%.2f (>%d%% drop)\n",
				now.Design, nowSpeedup, baseSpeedup, int(gateThroughputDrop*100))
			failures++
		} else {
			fmt.Printf("bench gate: ok   %-28s normalized throughput x%.2f vs baseline x%.2f\n",
				now.Design, nowSpeedup, baseSpeedup)
		}
	}
	if compared == 0 {
		return fmt.Errorf("bench gate: no designs in common with %s", path)
	}
	if failures > 0 {
		return fmt.Errorf("bench gate: %d of %d designs regressed vs %s", failures, compared, path)
	}
	fmt.Printf("bench gate: %d designs within tolerance of %s\n", compared, path)
	return nil
}
