package lwmapi

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"localwm/internal/domain"
	"localwm/internal/schedwm"
)

// The PR-4 wire shapes, frozen here as the daemon and client privately
// defined them before this package existed — a scheduling-only wire with
// no family field and schedwm.Record where today's envelopes carry the
// family-polymorphic Record. The compat tests below prove that every
// payload those types produce decodes into today's lwmapi types with
// unknown fields rejected (no field was dropped or renamed) and
// re-marshals to the identical JSON (no field changed shape) — in
// particular, that the multi-family redesign's new fields (family,
// design_ref, marked_solution, the Record tail) stay silent on
// scheduling payloads. If a change to wire.go breaks one of these tests,
// it breaks deployed PR-4 peers: add an optional field instead. The
// family-specific envelope fixtures live in family_test.go.
type (
	pr4MarkParams struct {
		N       int     `json:"n"`
		Tau     int     `json:"tau"`
		K       int     `json:"k"`
		Epsilon float64 `json:"epsilon"`
		Budget  int     `json:"budget"`
		Workers int     `json:"workers"`
	}
	pr4EmbedRequest struct {
		Design    string `json:"design"`
		Signature string `json:"signature"`
		pr4MarkParams
	}
	pr4EmbedResponse struct {
		MarkedDesign  string           `json:"marked_design"`
		Watermarks    int              `json:"watermarks"`
		TemporalEdges int              `json:"temporal_edges"`
		Records       []schedwm.Record `json:"records"`
	}
	pr4Suspect struct {
		Design   string `json:"design"`
		Schedule string `json:"schedule"`
	}
	pr4DetectRequest struct {
		Suspects []pr4Suspect     `json:"suspects"`
		Records  []schedwm.Record `json:"records"`
		Workers  int              `json:"workers"`
	}
	pr4DetectOutcome struct {
		Found      bool   `json:"found"`
		Root       string `json:"root,omitempty"`
		Satisfied  int    `json:"satisfied"`
		Total      int    `json:"total"`
		Pc         string `json:"pc"`
		RootsTried int    `json:"roots_tried"`
		Error      string `json:"error,omitempty"`
	}
	pr4DetectResponse struct {
		Results  [][]pr4DetectOutcome `json:"results"`
		Detected int                  `json:"detected"`
	}
	pr4VerifyRequest struct {
		Design    string `json:"design"`
		Schedule  string `json:"schedule"`
		Signature string `json:"signature"`
		pr4MarkParams
	}
	pr4VerifyResponse struct {
		Verified   bool   `json:"verified"`
		Satisfied  int    `json:"satisfied"`
		Total      int    `json:"total"`
		Pc         string `json:"pc"`
		RootsTried int    `json:"roots_tried"`
	}
	pr4ErrorBody struct {
		Error  string `json:"error"`
		Status int    `json:"status"`
	}
)

// fixtureRecord is a fully populated detector record: every field
// non-zero so a silently dropped field cannot hide behind omitempty.
func fixtureRecord() schedwm.Record {
	return schedwm.Record{
		Signature: []byte("alice"),
		Index:     1,
		Try:       3,
		DomainCfg: domain.Config{
			Tau: 16, MaxDist: 16, IncludeNum: 1, IncludeDen: 2, MaxTreeSize: 512,
		},
		TLen:      16,
		RankEdges: [][2]int{{0, 5}, {2, 9}},
		RootFP:    "mul(add,add)",
	}
}

// roundTrip marshals the PR-4 value, decodes it into the lwmapi target
// with unknown fields rejected, re-marshals, and requires JSON-level
// equality in both directions.
func roundTrip(t *testing.T, name string, pr4 any, target any) {
	t.Helper()
	old, err := json.Marshal(pr4)
	if err != nil {
		t.Fatalf("%s: marshal fixture: %v", name, err)
	}
	dec := json.NewDecoder(bytes.NewReader(old))
	dec.DisallowUnknownFields()
	if err := dec.Decode(target); err != nil {
		t.Fatalf("%s: PR-4 payload no longer decodes: %v\npayload: %s", name, err, old)
	}
	now, err := json.Marshal(reflect.ValueOf(target).Elem().Interface())
	if err != nil {
		t.Fatalf("%s: re-marshal: %v", name, err)
	}
	var wantMap, gotMap any
	if err := json.Unmarshal(old, &wantMap); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(now, &gotMap); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantMap, gotMap) {
		t.Fatalf("%s: round-trip changed the payload:\nPR-4: %s\nnow:  %s", name, old, now)
	}
	// And the reverse: a PR-4 peer decoding today's marshal must not see
	// unknown fields either (new fields are omitempty and stay silent
	// when unused).
	rev := json.NewDecoder(bytes.NewReader(now))
	rev.DisallowUnknownFields()
	if err := rev.Decode(newValueOf(pr4)); err != nil {
		t.Fatalf("%s: today's payload does not decode as PR-4: %v\npayload: %s", name, err, now)
	}
}

// newValueOf returns a pointer to a fresh zero value of v's type.
func newValueOf(v any) any { return reflect.New(reflect.TypeOf(v)).Interface() }

func TestPR4PayloadsRoundTripUnchanged(t *testing.T) {
	rec := fixtureRecord()
	roundTrip(t, "embed request",
		pr4EmbedRequest{
			Design: "node a in\nnode b out\nedge a b data\n", Signature: "alice",
			pr4MarkParams: pr4MarkParams{N: 2, Tau: 16, K: 3, Epsilon: 0.4, Budget: 40, Workers: 4},
		}, &EmbedRequest{})
	roundTrip(t, "embed response",
		pr4EmbedResponse{
			MarkedDesign: "node a in\n", Watermarks: 2, TemporalEdges: 6,
			Records: []schedwm.Record{rec, rec},
		}, &EmbedResponse{})
	roundTrip(t, "detect request",
		pr4DetectRequest{
			Suspects: []pr4Suspect{{Design: "node a in\n", Schedule: "step a 1\n"}},
			Records:  []schedwm.Record{rec},
			Workers:  8,
		}, &DetectRequest{})
	roundTrip(t, "detect response",
		pr4DetectResponse{
			Results: [][]pr4DetectOutcome{{
				{Found: true, Root: "n17", Satisfied: 3, Total: 3, Pc: "10^-4.21", RootsTried: 5},
				{Found: false, Satisfied: 1, Total: 3, Pc: "10^-1.02", RootsTried: 5, Error: "scan: bad schedule"},
			}},
			Detected: 1,
		}, &DetectResponse{})
	roundTrip(t, "verify request",
		pr4VerifyRequest{
			Design: "node a in\n", Schedule: "step a 1\n", Signature: "alice",
			pr4MarkParams: pr4MarkParams{N: 2, Tau: 16, K: 3, Epsilon: 0.4},
		}, &VerifyRequest{})
	roundTrip(t, "verify response",
		pr4VerifyResponse{
			Verified: true, Satisfied: 6, Total: 6, Pc: "10^-8.00", RootsTried: 2,
		}, &VerifyResponse{})
}

// TestPR4ErrorEnvelopeCompat: the typed Error still carries the complete
// PR-4 envelope ({"error","status"}), and a bare PR-4 error body decodes
// into Error with the legacy fields populated.
func TestPR4ErrorEnvelopeCompat(t *testing.T) {
	data, err := json.Marshal(Error{
		Code: CodeQueueFull, Message: "queue full, retry later",
		Retryable: true, LegacyMessage: "queue full, retry later", Status: 429,
	})
	if err != nil {
		t.Fatal(err)
	}
	var legacy pr4ErrorBody
	if err := json.Unmarshal(data, &legacy); err != nil {
		t.Fatal(err)
	}
	if legacy.Error != "queue full, retry later" || legacy.Status != 429 {
		t.Fatalf("PR-4 view of the envelope: %+v", legacy)
	}

	var e Error
	if err := json.Unmarshal([]byte(`{"error":"draining","status":503}`), &e); err != nil {
		t.Fatal(err)
	}
	if e.LegacyMessage != "draining" || e.Status != 503 || e.Code != "" {
		t.Fatalf("decoding a PR-4 envelope: %+v", e)
	}
}

// TestRetryableStatusTable pins the shared retry discipline.
func TestRetryableStatusTable(t *testing.T) {
	for status, want := range map[int]bool{
		400: false, 404: false, 405: false, 413: false,
		429: true, 500: true, 502: true, 503: true, 504: true,
		200: false, 201: false,
	} {
		if got := RetryableStatus(status); got != want {
			t.Errorf("RetryableStatus(%d) = %v, want %v", status, got, want)
		}
	}
}
