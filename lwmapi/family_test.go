package lwmapi

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"localwm/internal/domain"
	"localwm/internal/gcolor"
	"localwm/internal/tmwm"
)

func TestCanonicalFamily(t *testing.T) {
	for in, want := range map[string]string{
		"": FamilySched, "sched": FamilySched, "tmwm": FamilyTmwm,
		"gcolor": FamilyGcolor, "nosuch": "nosuch",
	} {
		if got := CanonicalFamily(in); got != want {
			t.Errorf("CanonicalFamily(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestFamilyUnsetIsByteIdentical: a request whose Family field is the
// empty string marshals to exactly the bytes the same request marshaled
// to before the family field existed — "family" never appears on the
// wire — and an explicit `"family":""` payload decodes and re-encodes to
// those same bytes. This is the wire-compat half of "empty ≡ sched".
func TestFamilyUnsetIsByteIdentical(t *testing.T) {
	cases := []struct {
		name    string
		unset   any
		decoded any
	}{
		{"embed request", EmbedRequest{Design: "node a in\n", Signature: "alice",
			MarkParams: MarkParams{N: 2, Tau: 16, K: 3, Epsilon: 0.4}}, &EmbedRequest{}},
		{"detect request", DetectRequest{
			Suspects: []Suspect{{Design: "node a in\n", Schedule: "step a 1\n"}},
			Records:  []Record{FromSchedRecord(fixtureRecord())}, Workers: 4}, &DetectRequest{}},
		{"verify request", VerifyRequest{Design: "node a in\n", Schedule: "step a 1\n",
			Signature: "alice"}, &VerifyRequest{}},
		{"put design request", PutDesignRequest{Design: "node a in\n"}, &PutDesignRequest{}},
	}
	for _, tc := range cases {
		plain, err := json.Marshal(tc.unset)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(plain, []byte(`"family"`)) {
			t.Errorf("%s: empty family leaked onto the wire: %s", tc.name, plain)
		}
		// Splice an explicit "family":"" into the payload; it must decode
		// (DisallowUnknownFields would reject a renamed field) and
		// re-marshal to the family-free bytes.
		explicit := append([]byte(`{"family":"",`), plain[1:]...)
		dec := json.NewDecoder(bytes.NewReader(explicit))
		dec.DisallowUnknownFields()
		if err := dec.Decode(tc.decoded); err != nil {
			t.Fatalf("%s: explicit family:\"\" does not decode: %v", tc.name, err)
		}
		again, err := json.Marshal(reflect.ValueOf(tc.decoded).Elem().Interface())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, plain) {
			t.Errorf("%s: family:\"\" round-trip changed the bytes:\nwant %s\ngot  %s",
				tc.name, plain, again)
		}
	}
}

// fixtureTmwmRecord is a fully populated template-matching record.
func fixtureTmwmRecord() tmwm.Record {
	return tmwm.Record{
		Signature:  []byte("alice"),
		WholeGraph: true,
		DomainCfg: domain.Config{
			Tau: 12, MaxDist: 12, IncludeNum: 1, IncludeDen: 2, MaxTreeSize: 256,
		},
		Index: 1, Try: 2, TLen: 12, RootFP: "mul(add,add)",
		RankEnforced: []tmwm.RankMatching{
			{Template: 3, Ranks: []int{0, 4, 7}},
			{Template: 1, Ranks: []int{2}},
		},
	}
}

// fixtureGcolorRecord is a fully populated graph-coloring record.
func fixtureGcolorRecord() gcolor.Record {
	return gcolor.Record{
		Signature: []byte("bob"),
		Tau:       8,
		RankPairs: [][2]int{{0, 3}, {1, 6}, {2, 5}},
	}
}

// TestRecordProjectionsRoundTrip: wrapping a family record in the wire
// Record and projecting it back is the identity, and the wire Record's
// JSON round-trips through DisallowUnknownFields for every family.
func TestRecordProjectionsRoundTrip(t *testing.T) {
	sr := fixtureRecord()
	if got := FromSchedRecord(sr).Sched(); !reflect.DeepEqual(got, sr) {
		t.Errorf("sched projection: %+v != %+v", got, sr)
	}
	tr := fixtureTmwmRecord()
	if got := FromTmwmRecord(tr).Tmwm(); !reflect.DeepEqual(got, tr) {
		t.Errorf("tmwm projection: %+v != %+v", got, tr)
	}
	gr := fixtureGcolorRecord()
	if got := FromGcolorRecord(gr).Gcolor(); !reflect.DeepEqual(got, gr) {
		t.Errorf("gcolor projection: %+v != %+v", got, gr)
	}

	for name, rec := range map[string]Record{
		"sched":  FromSchedRecord(sr),
		"tmwm":   FromTmwmRecord(tr),
		"gcolor": FromGcolorRecord(gr),
	} {
		data, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		var back Record
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&back); err != nil {
			t.Fatalf("%s record: %v", name, err)
		}
		if !reflect.DeepEqual(back, rec) {
			t.Errorf("%s record changed in transit:\n%+v\n%+v", name, rec, back)
		}
	}

	// A sched record's JSON must not mention any tail field at the top
	// level — the omitempty tail is what keeps scheduling payloads
	// byte-identical to PR 4. (DomainCfg legitimately nests its own Tau.)
	data, _ := json.Marshal(FromSchedRecord(sr))
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		t.Fatal(err)
	}
	for _, tail := range []string{"WholeGraph", "RankEnforced", "Tau", "RankPairs"} {
		if _, ok := top[tail]; ok {
			t.Errorf("sched record JSON leaks tail field %s: %s", tail, data)
		}
	}
}

// TestFamilyEnvelopeFixtures pins the family-carrying envelope shapes:
// the exact JSON a tmwm embed request and a gcolor detect request put on
// the wire, decoded with unknown fields rejected and re-encoded
// byte-identically.
func TestFamilyEnvelopeFixtures(t *testing.T) {
	fixtures := []struct {
		name   string
		json   string
		target any
	}{
		{"tmwm embed request",
			`{"family":"tmwm","design":"node a in\n","signature":"alice","n":1,"tau":12,"k":2,"epsilon":0.25,"budget":0,"workers":0}`,
			&EmbedRequest{}},
		{"tmwm embed response",
			`{"marked_design":"node a in\n","watermarks":1,"temporal_edges":2,"records":[{"Signature":"YWxpY2U=","Index":0,"Try":1,"DomainCfg":{"Tau":12,"MaxDist":12,"IncludeNum":1,"IncludeDen":2,"MaxTreeSize":256},"TLen":12,"RankEdges":null,"RootFP":"mul(add,add)","RankEnforced":[{"Template":3,"Ranks":[0,4,7]}]}],"marked_solution":"cover v1\nm 3 a b c\n"}`,
			&EmbedResponse{}},
		{"gcolor detect request",
			`{"family":"gcolor","suspects":[{"design":"gcolor v1\nn 2\ne 0 1\n","schedule":"coloring v1\nc 0 0\nc 1 1\n"}],"records":[{"Signature":"Ym9i","Index":0,"Try":0,"DomainCfg":{"Tau":0,"MaxDist":0,"IncludeNum":0,"IncludeDen":0,"MaxTreeSize":0},"TLen":0,"RankEdges":null,"RootFP":"","Tau":8,"RankPairs":[[0,3]]}],"workers":2}`,
			&DetectRequest{}},
		{"gcolor verify request",
			`{"family":"gcolor","design":"gcolor v1\nn 2\ne 0 1\n","schedule":"coloring v1\nc 0 0\nc 1 1\n","signature":"bob","n":1,"tau":8,"k":4,"epsilon":0,"budget":0,"workers":0}`,
			&VerifyRequest{}},
		{"gcolor put design request",
			`{"family":"gcolor","design":"gcolor v1\nn 2\ne 0 1\n"}`,
			&PutDesignRequest{}},
		{"gcolor put design response",
			`{"ref":"ab12","created":true,"bytes":18,"nodes":2,"family":"gcolor"}`,
			&PutDesignResponse{}},
	}
	for _, fx := range fixtures {
		dec := json.NewDecoder(strings.NewReader(fx.json))
		dec.DisallowUnknownFields()
		if err := dec.Decode(fx.target); err != nil {
			t.Fatalf("%s: fixture does not decode: %v", fx.name, err)
		}
		again, err := json.Marshal(reflect.ValueOf(fx.target).Elem().Interface())
		if err != nil {
			t.Fatal(err)
		}
		var want, got any
		if err := json.Unmarshal([]byte(fx.json), &want); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(again, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: re-encode changed the payload:\nfixture: %s\nnow:     %s",
				fx.name, fx.json, again)
		}
	}
}

// TestListFamiliesResponseShape pins the discovery payload's JSON names.
func TestListFamiliesResponseShape(t *testing.T) {
	resp := ListFamiliesResponse{
		Default: FamilySched,
		Families: []FamilyInfo{{
			Name: FamilySched, Description: "temporal edges",
			Defaults:     MarkParams{N: 2, Tau: 20, K: 4, Epsilon: 0.25},
			Capabilities: FamilyCaps{Batch: true, Robustness: true, Registry: true},
		}},
	}
	data, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"default"`, `"families"`, `"name"`, `"description"`,
		`"defaults"`, `"capabilities"`, `"batch"`, `"robustness"`, `"registry"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("discovery payload missing %s: %s", key, data)
		}
	}
}
