package lwmapi

import "encoding/json"

// Async job API wire types (POST /v1/jobs, GET /v1/jobs/{id},
// GET /v1/jobs/{id}/result, GET /v1/jobs/{id}/events).
//
// A job wraps one of the synchronous request envelopes — embed, detect,
// or verify — and runs it on the daemon's durable job queue instead of
// the request's own HTTP lifetime. The job's result bytes are exactly
// the response body the synchronous endpoint would have answered for the
// same payload, so a caller can switch between sync and async without
// changing its parsing, and tests can assert byte-identity.

// Job kinds: which synchronous endpoint the job's payload feeds.
const (
	JobKindEmbed      = "embed"
	JobKindDetect     = "detect"
	JobKindVerify     = "verify"
	JobKindRobustness = "robustness"
)

// Job states, the complete lifecycle:
//
//	queued → running → done
//	           ↓ ↑ (transient failure, retry budget left)
//	         queued
//	running → failed (permanent failure, or retry budget exhausted)
//
// done and failed are terminal. A daemon crash demotes running jobs back
// to queued on restart, so "running" is never a terminal trap.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// TerminalJobState reports whether a job state is final.
func TerminalJobState(state string) bool {
	return state == JobDone || state == JobFailed
}

// JobRequest submits one asynchronous job (POST /v1/jobs). Exactly one
// of Embed/Detect/Verify must be set, matching Kind; the payload is the
// same envelope the synchronous endpoint takes, design_ref included.
type JobRequest struct {
	// Kind selects the engine entry point: "embed", "detect",
	// "verify", or "robustness".
	Kind string `json:"kind"`
	// Embed is the payload for kind "embed".
	Embed *EmbedRequest `json:"embed,omitempty"`
	// Detect is the payload for kind "detect".
	Detect *DetectRequest `json:"detect,omitempty"`
	// Verify is the payload for kind "verify".
	Verify *VerifyRequest `json:"verify,omitempty"`
	// Robustness is the payload for kind "robustness". (POST
	// /v1/robustness builds this job itself for large campaigns; direct
	// submission through /v1/jobs is equally valid.)
	Robustness *RobustnessRequest `json:"robustness,omitempty"`
	// WebhookURL, when set, is POSTed the terminal JobStatus (HMAC-signed
	// when the daemon has a webhook secret, with delivery retries and a
	// stable idempotency key).
	WebhookURL string `json:"webhook_url,omitempty"`
	// IdempotencyKey, when set, dedupes resubmissions: a second submit
	// with the same key returns the first job instead of creating a new
	// one — the safety net for clients that retry a submit whose response
	// was lost in transit.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// MaxAttempts caps execution attempts before the job fails
	// terminally (0: the daemon's default, typically 3; clamped to the
	// daemon's maximum).
	MaxAttempts int `json:"max_attempts,omitempty"`
}

// JobStatus is the job's public state (GET /v1/jobs/{id}, the submit
// response, and the webhook payload).
type JobStatus struct {
	// ID names the job; all job endpoints key on it.
	ID string `json:"id"`
	// TraceID is the job-linked trace identifier: minted at submission
	// (or inherited from the submitting request's trace), echoed as
	// X-Lwm-Trace-Id on status reads and webhook deliveries, and — when
	// the daemon's flight recorder retained the submission — resolvable
	// via GET /v1/traces/{id}.
	TraceID string `json:"trace_id,omitempty"`
	// Kind is the job's engine entry point.
	Kind string `json:"kind"`
	// State is one of queued, running, done, failed.
	State string `json:"state"`
	// Attempt counts execution attempts so far (0 while first-queued).
	Attempt int `json:"attempt"`
	// MaxAttempts is the job's retry budget.
	MaxAttempts int `json:"max_attempts"`
	// Error describes the last (or final) failure, empty otherwise.
	Error string `json:"error,omitempty"`
	// CreatedUnixNano and UpdatedUnixNano timestamp the submission and
	// the latest state transition.
	CreatedUnixNano int64 `json:"created_unix_nano"`
	UpdatedUnixNano int64 `json:"updated_unix_nano"`
	// Terminal mirrors TerminalJobState(State), saving callers the
	// constant table.
	Terminal bool `json:"terminal"`
	// Version is the job's change counter, bumped on every transition.
	// Pass it back as ?since= on a status long-poll (?wait=) or the SSE
	// stream to block until the next transition. Zero (omitted) in
	// webhook payloads.
	Version int `json:"version,omitempty"`
}

// Webhook headers. The signature covers the idempotency key and the
// body (see SignWebhook in internal/jobs and the DESIGN.md appendix), so
// a valid signature cannot be transplanted onto a different delivery.
const (
	// WebhookSignatureHeader carries "sha256=<hex hmac>".
	WebhookSignatureHeader = "X-Lwm-Webhook-Signature"
	// WebhookIdempotencyHeader carries "<job id>:<terminal state>" —
	// stable across delivery retries, so receivers dedupe on it.
	WebhookIdempotencyHeader = "X-Lwm-Idempotency-Key"
	// WebhookAttemptHeader counts delivery attempts, starting at 1.
	WebhookAttemptHeader = "X-Lwm-Webhook-Attempt"
)

// ValidJobPayload checks a JobRequest's kind/payload pairing and returns
// the raw payload for the daemon to persist. Shared by the server (on
// submit) and the client (before submitting), so malformed jobs fail on
// whichever side sees them first.
func ValidJobPayload(req *JobRequest) (json.RawMessage, error) {
	var (
		payload any
		others  int
	)
	if req.Embed != nil {
		others++
	}
	if req.Detect != nil {
		others++
	}
	if req.Verify != nil {
		others++
	}
	if req.Robustness != nil {
		others++
	}
	if others != 1 {
		return nil, &Error{Code: CodeBadRequest, Status: 400,
			Message: "exactly one of embed, detect, verify, robustness must be set"}
	}
	switch req.Kind {
	case JobKindEmbed:
		if req.Embed == nil {
			return nil, &Error{Code: CodeBadRequest, Status: 400,
				Message: `kind "embed" requires the embed payload`}
		}
		payload = req.Embed
	case JobKindDetect:
		if req.Detect == nil {
			return nil, &Error{Code: CodeBadRequest, Status: 400,
				Message: `kind "detect" requires the detect payload`}
		}
		payload = req.Detect
	case JobKindVerify:
		if req.Verify == nil {
			return nil, &Error{Code: CodeBadRequest, Status: 400,
				Message: `kind "verify" requires the verify payload`}
		}
		payload = req.Verify
	case JobKindRobustness:
		if req.Robustness == nil {
			return nil, &Error{Code: CodeBadRequest, Status: 400,
				Message: `kind "robustness" requires the robustness payload`}
		}
		payload = req.Robustness
	default:
		return nil, &Error{Code: CodeBadRequest, Status: 400,
			Message: "kind must be embed, detect, verify, or robustness"}
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, &Error{Code: CodeBadRequest, Status: 400,
			Message: "encoding payload: " + err.Error()}
	}
	return raw, nil
}
