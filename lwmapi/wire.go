// Package lwmapi is the wire contract of the lwmd watermarking service:
// the JSON request/response envelopes of every /v1 endpoint, the design
// registry types, and the typed error envelope. Both sides of the wire —
// internal/server on the daemon and lwmclient on the caller — import
// these types, so the contract cannot drift between them.
//
// Compatibility: the field set and JSON names of the embed/detect/verify
// envelopes are frozen to the shapes the PR-4 daemon served (see
// wire_test.go, which round-trips captured fixtures). New capability
// arrives only as optional fields — design_ref alongside design — so a
// client that has never heard of the design registry keeps working
// unchanged, and an old payload decodes identically on a new daemon.
//
// Designs travel in the internal/cdfg text format and schedules in the
// internal/sched text format: the same artifacts the lwm CLI reads and
// writes, so files and service payloads interchange.
package lwmapi

import "localwm/internal/schedwm"

// APIKeyHeader carries the tenant API key on every /v1 request to a
// daemon running with a tenants file. The daemon also accepts the same
// key as an "Authorization: Bearer" token; a daemon with no tenants file
// ignores the header entirely.
const APIKeyHeader = "X-Lwm-Api-Key"

// Record is the detector-facing watermark record, exactly as the lwm CLI
// writes it and the lwmd service consumes it.
type Record = schedwm.Record

// MarkParams are the public embedding parameters shared by embed and
// verify requests. Zero values take the service's defaults (n=2, τ=20,
// K=4, ε=0.25, budget = critical path + 10%).
type MarkParams struct {
	// N is the number of local watermarks (default 2).
	N int `json:"n"`
	// Tau is the subtree cardinality τ (default 20).
	Tau int `json:"tau"`
	// K is the number of temporal edges per watermark (default 4).
	K int `json:"k"`
	// Epsilon is the laxity margin ε (default 0.25).
	Epsilon float64 `json:"epsilon"`
	// Budget is the control-step budget (default critical path + 10%).
	Budget int `json:"budget"`
	// Workers is the per-request engine parallelism (0: server default,
	// clamped to the daemon's configured maximum).
	Workers int `json:"workers"`
}

// EmbedRequest asks the service to embed scheduling watermarks. Exactly
// one of Design (inline cdfg text) or DesignRef (a registry reference
// from PutDesign) identifies the design; when both are set the reference
// wins, and an unresolvable reference answers 404 CodeDesignNotFound —
// it never silently falls back to the inline text, so the caller can
// count misses and re-put.
type EmbedRequest struct {
	// Design is the design inline, in the cdfg text format.
	Design string `json:"design,omitempty"`
	// DesignRef is a content-addressed registry reference (the ref field
	// of a PutDesignResponse) standing in for the inline design.
	DesignRef string `json:"design_ref,omitempty"`
	// Signature is the author signature the watermarks derive from.
	Signature string `json:"signature"`
	MarkParams
}

// EmbedResponse is the service's embed answer.
type EmbedResponse struct {
	// MarkedDesign is the constrained design, in the cdfg text format.
	MarkedDesign string `json:"marked_design"`
	// Watermarks is how many local watermarks were embedded.
	Watermarks int `json:"watermarks"`
	// TemporalEdges is the total count of inserted temporal edges.
	TemporalEdges int `json:"temporal_edges"`
	// Records are the detector-facing records, one per watermark.
	Records []Record `json:"records"`
}

// Suspect pairs a suspect design with its schedule for batch detection.
// The design arrives inline (Design) or by registry reference
// (DesignRef); the reference wins when both are set.
type Suspect struct {
	// Design is the suspect design inline, in the cdfg text format.
	Design string `json:"design,omitempty"`
	// DesignRef is a content-addressed registry reference standing in
	// for the inline design.
	DesignRef string `json:"design_ref,omitempty"`
	// Schedule is the suspect schedule, in the lwm schedule text format.
	Schedule string `json:"schedule"`
}

// DetectRequest is one batch detection request as it travels on the
// wire: every record scanned in every suspect. (Client-side chunking
// lives above this type — each chunk is one DetectRequest.)
type DetectRequest struct {
	// Suspects are the designs+schedules to scan.
	Suspects []Suspect `json:"suspects"`
	// Records are the detector-facing watermark records to scan for.
	Records []Record `json:"records"`
	// Workers is the per-request engine parallelism (0: server default).
	Workers int `json:"workers"`
}

// DetectOutcome is one suspect×record detection verdict. Pc travels in
// the paper's 10^x notation.
type DetectOutcome struct {
	// Found reports whether the record's watermark was fully matched.
	Found bool `json:"found"`
	// Root is the first matched root's node name, when found.
	Root string `json:"root,omitempty"`
	// Satisfied and Total count the matched temporal constraints of the
	// best candidate root.
	Satisfied int `json:"satisfied"`
	Total     int `json:"total"`
	// Pc is the coincidence probability of the best candidate, in the
	// paper's 10^x notation.
	Pc string `json:"pc"`
	// RootsTried is how many candidate roots the scan considered.
	RootsTried int `json:"roots_tried"`
	// Error carries a per-pair scan failure; the rest of the batch is
	// still meaningful.
	Error string `json:"error,omitempty"`
}

// DetectResponse is the service's batch detection answer.
type DetectResponse struct {
	// Results[i][j] is records[j] scanned in suspects[i], mirroring
	// engine.DetectBatch.
	Results [][]DetectOutcome `json:"results"`
	// Detected is the count of found verdicts across the grid.
	Detected int `json:"detected"`
}

// VerifyRequest asks the service to adjudicate an ownership claim from
// the claimed signature alone. The design arrives inline (Design) or by
// registry reference (DesignRef); the reference wins when both are set.
type VerifyRequest struct {
	// Design is the suspect design inline, in the cdfg text format.
	Design string `json:"design,omitempty"`
	// DesignRef is a content-addressed registry reference standing in
	// for the inline design.
	DesignRef string `json:"design_ref,omitempty"`
	// Schedule is the suspect schedule, in the lwm schedule text format.
	Schedule string `json:"schedule"`
	// Signature is the claimed author signature.
	Signature string `json:"signature"`
	MarkParams
}

// VerifyResponse is the service's verification verdict.
type VerifyResponse struct {
	// Verified reports whether every re-derived constraint held.
	Verified bool `json:"verified"`
	// Satisfied and Total count the re-derived constraints that held.
	Satisfied int `json:"satisfied"`
	Total     int `json:"total"`
	// Pc is the coincidence probability, in the paper's 10^x notation.
	Pc string `json:"pc"`
	// RootsTried is how many candidate roots the adjudication considered.
	RootsTried int `json:"roots_tried"`
}

// PutDesignRequest registers a design with the daemon's content-
// addressed registry (PUT /v1/designs).
type PutDesignRequest struct {
	// Design is the design to register, in the cdfg text format. It is
	// canonicalized (parsed and re-serialized) before hashing, so two
	// texts of the same graph — comments, blank lines, edge order —
	// yield the same reference.
	Design string `json:"design"`
}

// PutDesignResponse is the registry's answer to a put.
type PutDesignResponse struct {
	// Ref is the content-addressed reference: the lowercase hex SHA-256
	// of the canonical design text. Use it as the design_ref of
	// embed/detect/verify requests and in GET /v1/designs/{ref}.
	Ref string `json:"ref"`
	// Created is false when the design was already registered (the put
	// was a no-op refresh of its recency).
	Created bool `json:"created"`
	// Bytes is the canonical design text's size.
	Bytes int `json:"bytes"`
	// Nodes is the design's node count.
	Nodes int `json:"nodes"`
}

// GetDesignResponse returns a registered design
// (GET /v1/designs/{ref}).
type GetDesignResponse struct {
	// Ref echoes the requested reference.
	Ref string `json:"ref"`
	// Design is the canonical design text.
	Design string `json:"design"`
}
