// Package lwmapi is the wire contract of the lwmd watermarking service:
// the JSON request/response envelopes of every /v1 endpoint, the design
// registry types, the watermark-family discovery types, and the typed
// error envelope. Both sides of the wire — internal/server on the daemon
// and lwmclient on the caller — import these types, so the contract
// cannot drift between them.
//
// The envelopes are family-polymorphic: every request that names a design
// carries an optional "family" field selecting the watermark family
// (FamilySched, FamilyTmwm, FamilyGcolor), with the empty string meaning
// FamilySched. Designs, solutions, and records are family-typed text
// artifacts riding the same fields for every family — a design is cdfg
// text for sched and tmwm and gcolor graph text for gcolor; the
// Schedule field carries a schedule, a template cover, or a coloring; a
// Record's family-specific fields are omitempty extensions of the
// scheduling record.
//
// Compatibility: the field set and JSON names of the embed/detect/verify
// envelopes are frozen to the shapes the PR-4 daemon served (see
// wire_test.go, which round-trips captured fixtures). New capability
// arrives only as optional fields — design_ref alongside design, family
// alongside both — so a client that has never heard of the design
// registry or of non-scheduling families keeps working unchanged, and an
// old payload decodes identically on a new daemon.
package lwmapi

import (
	"localwm/internal/domain"
	"localwm/internal/gcolor"
	"localwm/internal/prng"
	"localwm/internal/schedwm"
	"localwm/internal/tmwm"
)

// APIKeyHeader carries the tenant API key on every /v1 request to a
// daemon running with a tenants file. The daemon also accepts the same
// key as an "Authorization: Bearer" token; a daemon with no tenants file
// ignores the header entirely.
const APIKeyHeader = "X-Lwm-Api-Key"

// RankMatching is a template matching in rank space, as tmwm records
// describe enforced matchings.
type RankMatching = tmwm.RankMatching

// Record is the detector-facing watermark record, exactly as the lwm CLI
// writes it and the lwmd service consumes it. The leading fields are the
// scheduling-family record, byte-for-byte as PR 4 served it (schedwm
// marshals with Go field names); the omitempty tail carries the fields
// the other families need, silent when unused, so a scheduling record's
// JSON is unchanged by the multi-family redesign.
type Record struct {
	Signature prng.Signature
	Index     int
	Try       int
	DomainCfg domain.Config
	TLen      int
	RankEdges [][2]int
	RootFP    string

	// WholeGraph and RankEnforced belong to tmwm records: the protocol
	// applied with T = CDFG, and the enforced matchings in rank space.
	WholeGraph   bool           `json:",omitempty"`
	RankEnforced []RankMatching `json:",omitempty"`
	// Tau and RankPairs belong to gcolor records: the locality size and
	// the constrained vertex pairs in locality-rank space.
	Tau       int      `json:",omitempty"`
	RankPairs [][2]int `json:",omitempty"`
}

// Sched projects the record onto the scheduling family.
func (r Record) Sched() schedwm.Record {
	return schedwm.Record{
		Signature: r.Signature, Index: r.Index, Try: r.Try,
		DomainCfg: r.DomainCfg, TLen: r.TLen,
		RankEdges: r.RankEdges, RootFP: r.RootFP,
	}
}

// Tmwm projects the record onto the template-matching family.
func (r Record) Tmwm() tmwm.Record {
	return tmwm.Record{
		Signature: r.Signature, WholeGraph: r.WholeGraph,
		DomainCfg: r.DomainCfg, Index: r.Index, Try: r.Try,
		TLen: r.TLen, RootFP: r.RootFP, RankEnforced: r.RankEnforced,
	}
}

// Gcolor projects the record onto the graph-coloring family.
func (r Record) Gcolor() gcolor.Record {
	return gcolor.Record{Signature: r.Signature, Tau: r.Tau, RankPairs: r.RankPairs}
}

// FromSchedRecord wraps a scheduling record in the wire type.
func FromSchedRecord(rec schedwm.Record) Record {
	return Record{
		Signature: rec.Signature, Index: rec.Index, Try: rec.Try,
		DomainCfg: rec.DomainCfg, TLen: rec.TLen,
		RankEdges: rec.RankEdges, RootFP: rec.RootFP,
	}
}

// FromTmwmRecord wraps a template-matching record in the wire type.
func FromTmwmRecord(rec tmwm.Record) Record {
	return Record{
		Signature: rec.Signature, WholeGraph: rec.WholeGraph,
		DomainCfg: rec.DomainCfg, Index: rec.Index, Try: rec.Try,
		TLen: rec.TLen, RootFP: rec.RootFP, RankEnforced: rec.RankEnforced,
	}
}

// FromGcolorRecord wraps a graph-coloring record in the wire type.
func FromGcolorRecord(rec gcolor.Record) Record {
	return Record{Signature: rec.Signature, Tau: rec.Tau, RankPairs: rec.RankPairs}
}

// SchedRecords projects a record slice onto the scheduling family.
func SchedRecords(recs []Record) []schedwm.Record {
	out := make([]schedwm.Record, len(recs))
	for i, r := range recs {
		out[i] = r.Sched()
	}
	return out
}

// MarkParams are the public embedding parameters shared by embed and
// verify requests. Zero values take the selected family's defaults
// (GET /v1/families lists them; for sched: n=2, τ=20, K=4, ε=0.25,
// budget = critical path + 10%). Each family reads the subset it uses —
// K is temporal edges for sched, enforced matchings Z for tmwm,
// constraint edges for gcolor.
type MarkParams struct {
	// N is the number of local watermarks.
	N int `json:"n"`
	// Tau is the locality cardinality τ.
	Tau int `json:"tau"`
	// K is the number of constraints per watermark.
	K int `json:"k"`
	// Epsilon is the laxity margin ε (sched and tmwm).
	Epsilon float64 `json:"epsilon"`
	// Budget is the control-step budget (sched and tmwm).
	Budget int `json:"budget"`
	// Workers is the per-request engine parallelism (0: server default,
	// clamped to the daemon's configured maximum).
	Workers int `json:"workers"`
}

// EmbedRequest asks the service to embed watermarks. Exactly one of
// Design (inline family text) or DesignRef (a registry reference from
// PutDesign) identifies the design; when both are set the reference
// wins, and an unresolvable reference answers 404 CodeDesignNotFound —
// it never silently falls back to the inline text, so the caller can
// count misses and re-put.
type EmbedRequest struct {
	// Family selects the watermark family; empty means FamilySched. An
	// unknown name answers 400 CodeFamilyUnknown.
	Family string `json:"family,omitempty"`
	// Design is the design inline, in the family's text format.
	Design string `json:"design,omitempty"`
	// DesignRef is a content-addressed registry reference (the ref field
	// of a PutDesignResponse) standing in for the inline design. The
	// reference must have been put under the same family.
	DesignRef string `json:"design_ref,omitempty"`
	// Signature is the author signature the watermarks derive from.
	Signature string `json:"signature"`
	MarkParams
}

// EmbedResponse is the service's embed answer.
type EmbedResponse struct {
	// MarkedDesign is the constrained design, in the family's text
	// format: the temporal-edge-augmented cdfg for sched, the unmodified
	// design for tmwm (the watermark lives in the cover), the
	// constraint-edge-augmented instance for gcolor.
	MarkedDesign string `json:"marked_design"`
	// Watermarks is how many local watermarks were embedded.
	Watermarks int `json:"watermarks"`
	// TemporalEdges is the total count of embedded constraints: temporal
	// edges for sched, enforced matchings for tmwm, constraint edges for
	// gcolor. (The JSON name is frozen from the scheduling-only wire.)
	TemporalEdges int `json:"temporal_edges"`
	// Records are the detector-facing records, one per watermark.
	Records []Record `json:"records"`
	// MarkedSolution is the marked synthesis solution for families whose
	// watermark manifests in the solution rather than the design text: a
	// full template cover carrying the enforced matchings for tmwm, a
	// DSATUR coloring of the constrained instance for gcolor. Empty for
	// sched (schedule the marked design with any honoring scheduler).
	MarkedSolution string `json:"marked_solution,omitempty"`
}

// Suspect pairs a suspect design with its synthesis solution for batch
// detection. The design arrives inline (Design) or by registry reference
// (DesignRef); the reference wins when both are set. The family is a
// property of the whole DetectRequest, not of individual suspects.
type Suspect struct {
	// Design is the suspect design inline, in the family's text format.
	Design string `json:"design,omitempty"`
	// DesignRef is a content-addressed registry reference standing in
	// for the inline design.
	DesignRef string `json:"design_ref,omitempty"`
	// Schedule is the suspect solution in the family's text format: a
	// schedule for sched, a template cover for tmwm, a coloring for
	// gcolor. (The JSON name is frozen from the scheduling-only wire.)
	Schedule string `json:"schedule"`
}

// DetectRequest is one batch detection request as it travels on the
// wire: every record scanned in every suspect. (Client-side chunking
// lives above this type — each chunk is one DetectRequest.)
type DetectRequest struct {
	// Family selects the watermark family for every suspect and record
	// in the batch; empty means FamilySched.
	Family string `json:"family,omitempty"`
	// Suspects are the designs+solutions to scan.
	Suspects []Suspect `json:"suspects"`
	// Records are the detector-facing watermark records to scan for.
	Records []Record `json:"records"`
	// Workers is the per-request engine parallelism (0: server default).
	Workers int `json:"workers"`
}

// DetectOutcome is one suspect×record detection verdict. Pc travels in
// the paper's 10^x notation.
type DetectOutcome struct {
	// Found reports whether the record's watermark was fully matched.
	Found bool `json:"found"`
	// Root is the matched root, when found: a node name for sched and
	// tmwm, a vertex number for gcolor.
	Root string `json:"root,omitempty"`
	// Satisfied and Total count the matched constraints of the best
	// candidate root.
	Satisfied int `json:"satisfied"`
	Total     int `json:"total"`
	// Pc is the coincidence probability of the best candidate, in the
	// paper's 10^x notation.
	Pc string `json:"pc"`
	// RootsTried is how many candidate roots the scan considered.
	RootsTried int `json:"roots_tried"`
	// Error carries a per-pair scan failure; the rest of the batch is
	// still meaningful.
	Error string `json:"error,omitempty"`
}

// DetectResponse is the service's batch detection answer.
type DetectResponse struct {
	// Results[i][j] is records[j] scanned in suspects[i], mirroring
	// engine.DetectBatch.
	Results [][]DetectOutcome `json:"results"`
	// Detected is the count of found verdicts across the grid.
	Detected int `json:"detected"`
}

// VerifyRequest asks the service to adjudicate an ownership claim from
// the claimed signature alone. The design arrives inline (Design) or by
// registry reference (DesignRef); the reference wins when both are set.
type VerifyRequest struct {
	// Family selects the watermark family; empty means FamilySched.
	Family string `json:"family,omitempty"`
	// Design is the suspect design inline, in the family's text format.
	Design string `json:"design,omitempty"`
	// DesignRef is a content-addressed registry reference standing in
	// for the inline design.
	DesignRef string `json:"design_ref,omitempty"`
	// Schedule is the suspect solution, in the family's text format (see
	// Suspect.Schedule).
	Schedule string `json:"schedule"`
	// Signature is the claimed author signature.
	Signature string `json:"signature"`
	MarkParams
}

// VerifyResponse is the service's verification verdict.
type VerifyResponse struct {
	// Verified reports whether every re-derived constraint held.
	Verified bool `json:"verified"`
	// Satisfied and Total count the re-derived constraints that held.
	Satisfied int `json:"satisfied"`
	Total     int `json:"total"`
	// Pc is the coincidence probability, in the paper's 10^x notation.
	Pc string `json:"pc"`
	// RootsTried is how many candidate roots the adjudication considered.
	RootsTried int `json:"roots_tried"`
}

// PutDesignRequest registers a design with the daemon's content-
// addressed registry (PUT /v1/designs).
type PutDesignRequest struct {
	// Family is the watermark family the design is registered under;
	// empty means FamilySched. References are family-salted: the same
	// text put under two families yields two distinct refs, and a ref
	// only resolves for requests of its own family.
	Family string `json:"family,omitempty"`
	// Design is the design to register, in the family's text format. It
	// is canonicalized (parsed and re-serialized) before hashing, so two
	// texts of the same graph — comments, blank lines, edge order —
	// yield the same reference.
	Design string `json:"design"`
}

// PutDesignResponse is the registry's answer to a put.
type PutDesignResponse struct {
	// Ref is the content-addressed reference: the lowercase hex SHA-256
	// of the canonical design text (family-salted for non-sched
	// families). Use it as the design_ref of embed/detect/verify
	// requests and in GET /v1/designs/{ref}.
	Ref string `json:"ref"`
	// Created is false when the design was already registered (the put
	// was a no-op refresh of its recency).
	Created bool `json:"created"`
	// Bytes is the canonical design text's size.
	Bytes int `json:"bytes"`
	// Nodes is the design's node count (graph vertices for gcolor).
	Nodes int `json:"nodes"`
	// Family echoes the registered family for non-sched designs; absent
	// for sched, keeping the scheduling wire byte-identical to PR 4.
	Family string `json:"family,omitempty"`
}

// GetDesignResponse returns a registered design
// (GET /v1/designs/{ref}).
type GetDesignResponse struct {
	// Ref echoes the requested reference.
	Ref string `json:"ref"`
	// Design is the canonical design text.
	Design string `json:"design"`
	// Family is the family the design was registered under; absent for
	// sched.
	Family string `json:"family,omitempty"`
}
