package lwmapi

// Robustness campaign wire types (POST /v1/robustness).
//
// A campaign re-marks a design deterministically from a signature, then
// runs a battery of seeded attacks — families × an intensity ladder ×
// repeated trials — against the marked schedule, re-running detection
// after every attack. The report aggregates per-locality survival rates,
// Pc degradation per intensity step, and the minimum attack budget that
// defeated a Convincing detection.
//
// Campaigns are deterministic end to end: the same design, signature,
// seed, and battery spec produce a byte-identical report regardless of
// worker count and of whether the campaign ran synchronously, through
// the async job queue, or offline via `lwm robust`.

// Attack family names accepted in an AttackSpec.
const (
	// AttackPerturb moves ops to other legal control steps; intensity is
	// the number of attempted moves.
	AttackPerturb = "perturb"
	// AttackCrop cuts a partition out of the design; intensity is the
	// percentage of nodes dropped (1–99).
	AttackCrop = "crop"
	// AttackRenumber scrubs every node identity and label; intensity only
	// seeds the permutation.
	AttackRenumber = "renumber"
	// AttackReschedule re-runs synthesis from scratch, discarding the
	// marked schedule; the attack is deterministic, so every trial of
	// every intensity yields the same verdict.
	AttackReschedule = "reschedule"
	// AttackHost embeds the marked design as a core inside a larger host
	// system; intensity only seeds the interleaving.
	AttackHost = "host"
)

// AttackFamilies lists every supported family, in report order.
func AttackFamilies() []string {
	return []string{AttackPerturb, AttackCrop, AttackRenumber, AttackReschedule, AttackHost}
}

// AttackSpec is one family's intensity ladder within a battery.
type AttackSpec struct {
	// Family is one of the Attack* constants.
	Family string `json:"family"`
	// Intensities is the attack-budget ladder, strictly increasing and
	// positive. Its meaning is family-specific (moves for perturb,
	// percent of nodes for crop, a seed variant elsewhere).
	Intensities []int `json:"intensities"`
}

// BatterySpec describes a whole campaign: which attacks to run, how
// often, and the detection threshold the defeat analysis uses.
type BatterySpec struct {
	// Attacks are the families to run. Empty selects the default
	// battery: perturb [10,50,250], crop [25,50], renumber [1],
	// reschedule [1], host [1].
	Attacks []AttackSpec `json:"attacks,omitempty"`
	// Trials is how many independently seeded runs each (family,
	// intensity) cell gets (default 3).
	Trials int `json:"trials,omitempty"`
	// Alpha is the Convincing threshold for the defeat analysis
	// (default 1e-6).
	Alpha float64 `json:"alpha,omitempty"`
}

// RobustnessRequest runs an attack campaign against a marked design
// (POST /v1/robustness). The design arrives inline or by registry
// reference (the reference wins); the service re-embeds the watermarks
// deterministically from Signature and MarkParams, so the request never
// ships temporal edges or records.
type RobustnessRequest struct {
	// Family selects the watermark family; empty means FamilySched.
	// Campaigns require attack batteries, which only the scheduling
	// family has — other families answer 400 CodeFamilyUnsupported.
	Family string `json:"family,omitempty"`
	// Design is the unmarked design inline, in the cdfg text format.
	Design string `json:"design,omitempty"`
	// DesignRef is a content-addressed registry reference standing in
	// for the inline design.
	DesignRef string `json:"design_ref,omitempty"`
	// Signature is the author signature the watermarks derive from.
	Signature string `json:"signature"`
	MarkParams
	// Seed keys every attack's randomness. Campaigns with the same seed
	// and battery produce byte-identical reports.
	Seed string `json:"seed"`
	// Battery is the campaign spec; zero values take the defaults.
	Battery BatterySpec `json:"battery"`
	// Async forces dispatch through the job queue even when the campaign
	// is small enough to run synchronously.
	Async bool `json:"async,omitempty"`
	// WebhookURL, IdempotencyKey, and MaxAttempts configure the async
	// job when the campaign is dispatched to the queue (they are ignored
	// on the synchronous path); see JobRequest for their semantics.
	WebhookURL     string `json:"webhook_url,omitempty"`
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	MaxAttempts    int    `json:"max_attempts,omitempty"`
}

// RobustnessResponse is the campaign answer: exactly one of Report
// (synchronous completion) or Job (the campaign was queued; poll the job
// API or wait for the webhook, then fetch the result — whose bytes are
// again this envelope, with Report set).
type RobustnessResponse struct {
	Report *RobustnessReport `json:"report,omitempty"`
	Job    *JobStatus        `json:"job,omitempty"`
}

// RobustnessReport is a finished campaign. All per-locality slices are
// indexed by locality (watermark) number, matching the records an embed
// of the same design+signature+params returns.
type RobustnessReport struct {
	// Localities is the number of embedded local watermarks.
	Localities int `json:"localities"`
	// Constraints is the total temporal-constraint count across
	// localities, as detected in the unattacked baseline.
	Constraints int `json:"constraints"`
	// Seed echoes the campaign seed.
	Seed string `json:"seed"`
	// Alpha is the Convincing threshold the defeat analysis used.
	Alpha float64 `json:"alpha"`
	// Trials is the per-cell trial count.
	Trials int `json:"trials"`
	// Units is the number of attack units executed:
	// Σ families len(intensities) × Trials.
	Units int `json:"units"`
	// BaselinePcExp[i] is locality i's log10 coincidence probability in
	// the unattacked marked schedule.
	BaselinePcExp []float64 `json:"baseline_pc_exp"`
	// Families holds one report per attack family, in battery order.
	Families []FamilyReport `json:"families"`
}

// FamilyReport is one attack family's ladder of results.
type FamilyReport struct {
	// Family names the attack.
	Family string `json:"family"`
	// MinDefeatBudget is the smallest intensity at which no trial left
	// any locality Convincing at the campaign alpha, or -1 when the
	// watermark stayed Convincing somewhere at every rung of the ladder.
	MinDefeatBudget int `json:"min_defeat_budget"`
	// Steps is the intensity ladder, ascending.
	Steps []IntensityStep `json:"steps"`
}

// IntensityStep aggregates all trials of one (family, intensity) cell.
type IntensityStep struct {
	// Intensity is the attack budget of this rung.
	Intensity int `json:"intensity"`
	// Trials is the number of trials that completed; Errors holds the
	// failures of the rest, in trial order.
	Trials int      `json:"trials"`
	Errors []string `json:"errors,omitempty"`
	// Survival[i] is the fraction of completed trials in which locality
	// i was still fully detected (Found).
	Survival []float64 `json:"survival"`
	// Convincing[i] is the fraction of completed trials in which
	// locality i's detection was still Convincing at the campaign alpha.
	Convincing []float64 `json:"convincing"`
	// MeanPcExp[i] is the mean log10 coincidence probability of locality
	// i's best candidate across completed trials (0 = probability 1,
	// i.e. no surviving evidence).
	MeanPcExp []float64 `json:"mean_pc_exp"`
}
