package lwmapi

import (
	"localwm/internal/obs"
	"localwm/internal/obs/recorder"
)

// Flight-recorder and profiling-observatory wire types.
//
//	GET /v1/traces               list retained traces (filters below)
//	GET /v1/traces/{id}          one retained trace, full span tree
//	GET /v1/profiles             list resident pprof snapshots
//	GET /v1/profiles/{name}      one snapshot, raw pprof bytes
//
// TraceEntry and TraceSpan alias the recorder's own retained shapes —
// the same one-definition rule the embed Records follow (Record =
// schedwm.Record): the daemon marshals what it stores, so the wire
// cannot drift from the recorder.

// TraceEntry is one retained request: identity, outcome, stage timings,
// and (on the detail endpoint) the full span tree and engine counters.
// List responses omit Spans and EngineCounters.
type TraceEntry = recorder.Entry

// TraceSpan is one node of a retained span tree.
type TraceSpan = obs.SpanView

// ListTracesResponse is the body of GET /v1/traces.
//
// Query parameters: endpoint (exact endpoint name), result (ok, error,
// rejected, timeout, panic, drained, rate_limited, unauthorized),
// reason (error, slow, sampled), min_duration (Go duration, e.g.
// "250ms"), limit (max entries, default 100). On a tenanted daemon the
// listing is scoped to the calling tenant.
type ListTracesResponse struct {
	// Traces holds the matching entries, newest first, span trees
	// omitted — fetch /v1/traces/{id} for the full entry.
	Traces []TraceEntry `json:"traces"`
	// Count mirrors len(Traces) for clients that stream-decode.
	Count int `json:"count"`
}

// ProfileInfo describes one resident pprof snapshot.
type ProfileInfo struct {
	// Name is the snapshot's file name, e.g. cpu-1700000000123456789.pprof;
	// pass it to GET /v1/profiles/{name} to fetch the bytes.
	Name string `json:"name"`
	// Kind is cpu, heap, or allocs.
	Kind string `json:"kind"`
	// SizeBytes is the snapshot's size on disk.
	SizeBytes int64 `json:"size_bytes"`
	// ModTimeUnix is the capture time, seconds since the epoch.
	ModTimeUnix int64 `json:"mod_time_unix"`
}

// ListProfilesResponse is the body of GET /v1/profiles, newest first.
type ListProfilesResponse struct {
	Profiles []ProfileInfo `json:"profiles"`
	Count    int           `json:"count"`
}
