package lwmapi

import "fmt"

// Error codes carried by every non-2xx /v1 response. The table is part
// of the wire contract (see DESIGN.md, "lwmapi error codes"): clients
// switch on Code instead of string-matching messages. lwmclient maps
// each code to an exported sentinel error.
const (
	// CodeBadRequest: the payload was malformed or semantically invalid
	// (unparseable design, missing signature, bad parameter). 400, not
	// retryable.
	CodeBadRequest = "bad_request"
	// CodeDesignNotFound: a design_ref did not resolve in the daemon's
	// registry — the design was never put, or was evicted. 404, not
	// retryable as-is; re-put the design or fall back to inline.
	CodeDesignNotFound = "design_not_found"
	// CodeMethodNotAllowed: wrong HTTP method for the endpoint. 405, not
	// retryable.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeQueueFull: the endpoint's admission queue is at capacity. 429
	// with Retry-After; retryable after backing off.
	CodeQueueFull = "queue_full"
	// CodeDraining: the daemon is shutting down gracefully. 503 with
	// Retry-After; retryable against its replacement.
	CodeDraining = "draining"
	// CodeTimeout: the request deadline expired while the request was
	// queued or running. 504; retryable.
	CodeTimeout = "timeout"
	// CodeInternal: the handler failed or panicked. 500; retryable (the
	// panic is confined to the request).
	CodeInternal = "internal"
	// CodeJobNotFound: a job ID did not resolve — never submitted, or
	// evicted by terminal-job retention. 404, not retryable.
	CodeJobNotFound = "job_not_found"
	// CodeJobNotReady: the job exists but has not reached a terminal
	// state, so its result is not available yet. 409 with Retry-After;
	// retryable — poll the status endpoint (or just retry) until the job
	// terminates.
	CodeJobNotReady = "job_not_ready"
	// CodeJobFailed: the job reached the failed state, so no result will
	// ever exist; the envelope message carries the job's final error.
	// 410, not retryable — fix the payload and submit a new job.
	CodeJobFailed = "job_failed"
	// CodeTenantUnauthorized: the request carried no API key on a daemon
	// that requires one, or a key that matches no tenant (including keys
	// revoked by a tenants-file reload). 401, not retryable — fix the
	// credential.
	CodeTenantUnauthorized = "tenant_unauthorized"
	// CodeTenantRateLimited: the tenant's own token bucket (or job
	// backlog bound) is exhausted. 429 with a tenant-scoped Retry-After;
	// retryable after backing off. Distinct from CodeQueueFull: this is
	// one caller's throttle, not daemon-wide pressure, so shared clients
	// should back off without counting it against the service's health.
	CodeTenantRateLimited = "tenant_rate_limited"
	// CodeTenantQuotaExceeded: the write would push the tenant past its
	// store byte or entry quota. 413, not retryable — free space or raise
	// the quota.
	CodeTenantQuotaExceeded = "tenant_quota_exceeded"
	// CodeTraceNotFound: a trace ID did not resolve in the flight
	// recorder — never retained (sampled out), already evicted by the
	// ring bound, or the recorder is disabled. 404, not retryable.
	CodeTraceNotFound = "trace_not_found"
	// CodeProfileNotFound: a pprof snapshot name did not resolve — never
	// captured, pruned by retention, or the profiler is disabled. 404,
	// not retryable.
	CodeProfileNotFound = "profile_not_found"
	// CodeFamilyUnknown: the request's family field names no registered
	// watermark family (GET /v1/families lists them). 400, not
	// retryable — fix the family name.
	CodeFamilyUnknown = "family_unknown"
	// CodeFamilyUnsupported: the family exists but does not support the
	// requested operation — e.g. a robustness campaign against a family
	// without attack batteries. 400, not retryable.
	CodeFamilyUnsupported = "family_unsupported"
)

// Error is the JSON envelope of every non-2xx /v1 response.
//
// The legacy fields (LegacyMessage under "error", Status under
// "status") are the complete PR-4 envelope and keep old clients
// decoding; Code/Message/Retryable are the typed surface new callers
// switch on. Status codes and Retry-After semantics are unchanged from
// PR 4 — the envelope only adds structure.
type Error struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is the human-readable failure description.
	Message string `json:"message"`
	// Retryable reports whether retrying the identical request can
	// succeed (matching the status-based retry discipline: 429, 500,
	// 502, 503, 504 are retryable; 4xx answers are definite).
	Retryable bool `json:"retryable"`
	// LegacyMessage mirrors Message under the PR-4 envelope's "error"
	// key.
	LegacyMessage string `json:"error"`
	// Status is the HTTP status code, mirrored into the body as in PR 4.
	Status int `json:"status"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("lwmapi: %s (%s, status %d)", e.Message, e.Code, e.Status)
}

// RetryableStatus reports whether an HTTP status is transient under the
// service's retry discipline — the single definition both the daemon
// (stamping Error.Retryable) and the client (deciding to retry) share.
func RetryableStatus(status int) bool {
	switch status {
	case 429, 500, 502, 503, 504:
		return true
	}
	return false
}

// RetryableCode reports whether an error code is transient even when its
// HTTP status is not in the retryable set: job_not_ready rides a 409
// (the request was fine, the answer just doesn't exist yet), so the
// envelope's Retryable is code-driven there. The daemon stamps
// RetryableStatus(status) || RetryableCode(code).
func RetryableCode(code string) bool {
	return code == CodeJobNotReady
}
