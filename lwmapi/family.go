package lwmapi

// Watermark family names accepted in the envelopes' "family" field. The
// empty string is equivalent to FamilySched everywhere, so pre-family
// payloads keep their meaning.
const (
	// FamilySched: temporal-edge watermarks on operation schedules
	// (internal/schedwm + internal/engine; paper §IV-A).
	FamilySched = "sched"
	// FamilyTmwm: enforced template matchings and pseudo-primary outputs
	// on datapath covers (internal/tmwm + internal/tmatch; paper §IV-B).
	FamilyTmwm = "tmwm"
	// FamilyGcolor: constraint edges on graph-coloring instances
	// (internal/gcolor; paper §III's running example).
	FamilyGcolor = "gcolor"
)

// CanonicalFamily maps the wire's family field to its canonical name:
// the empty string means FamilySched. Unknown names pass through
// unchanged (the server answers them with CodeFamilyUnknown).
func CanonicalFamily(name string) string {
	if name == "" {
		return FamilySched
	}
	return name
}

// FamilyCaps are a family's capability flags, as GET /v1/families
// advertises them.
type FamilyCaps struct {
	// Batch: the family serves multi-suspect×multi-record detection
	// grids through /v1/detect.
	Batch bool `json:"batch"`
	// Robustness: the family has attack batteries, so /v1/robustness
	// accepts it. A false flag answers 400 CodeFamilyUnsupported there.
	Robustness bool `json:"robustness"`
	// Registry: designs of this family can be put into the
	// content-addressed registry and referenced by design_ref.
	Registry bool `json:"registry"`
}

// FamilyInfo describes one watermark family (GET /v1/families).
type FamilyInfo struct {
	// Name is the wire name to put in the envelopes' family field.
	Name string `json:"name"`
	// Description is a one-line human-readable summary.
	Description string `json:"description"`
	// Defaults are the MarkParams the family fills in for zero values.
	Defaults MarkParams `json:"defaults"`
	// Capabilities are the family's capability flags.
	Capabilities FamilyCaps `json:"capabilities"`
}

// ListFamiliesResponse is the discovery answer (GET /v1/families).
type ListFamiliesResponse struct {
	// Default is the family an empty family field selects.
	Default string `json:"default"`
	// Families lists every served family, sorted by name.
	Families []FamilyInfo `json:"families"`
}
