package lwmclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"localwm/lwmapi"
)

// fastConfig returns a Config tuned for tests: tiny backoffs, pinned
// jitter, and a breaker that effectively never trips unless the test
// overrides it.
func fastConfig(url string) Config {
	return Config{
		BaseURL:     url,
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		CallTimeout: 10 * time.Second,
		Breaker:     BreakerConfig{ConsecutiveFailures: 1 << 20, FailureFraction: 1},
		jitter:      func() float64 { return 0.5 },
	}
}

func newTestClient(t *testing.T, cfg Config) *Client {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fakeVerify scripts a /v1/verify endpoint: fail(n) decides the fate of
// the n-th request (1-based).
func fakeVerify(t *testing.T, fate func(n int, w http.ResponseWriter) bool) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(hits.Add(1))
		if fate != nil && fate(n, w) {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(VerifyResponse{Verified: true, Satisfied: 7, Total: 8, Pc: "10^-9.1"})
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

// TestClientRetriesTransient500: two injected 500s, then success; the
// call succeeds with exactly three attempts.
func TestClientRetriesTransient500(t *testing.T) {
	ts, hits := fakeVerify(t, func(n int, w http.ResponseWriter) bool {
		if n <= 2 {
			http.Error(w, "scripted failure", http.StatusInternalServerError)
			return true
		}
		return false
	})
	c := newTestClient(t, fastConfig(ts.URL))
	resp, err := c.Verify(context.Background(), VerifyRequest{})
	if err != nil || !resp.Verified {
		t.Fatalf("verify: %v, %+v", err, resp)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
	cs := c.Counters()
	if cs.Attempts != 3 || cs.Retries != 2 {
		t.Fatalf("counters %+v", cs)
	}
}

// TestClientNoRetryOnDefiniteAnswer: a 400 is the service's answer, not
// a fault — returned immediately, never retried.
func TestClientNoRetryOnDefiniteAnswer(t *testing.T) {
	ts, hits := fakeVerify(t, func(n int, w http.ResponseWriter) bool {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]any{"error": "signature: required", "status": 400})
		return true
	})
	c := newTestClient(t, fastConfig(ts.URL))
	_, err := c.Verify(context.Background(), VerifyRequest{})
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want HTTPError 400", err)
	}
	if he.Msg != "signature: required" {
		t.Fatalf("msg = %q", he.Msg)
	}
	if hits.Load() != 1 {
		t.Fatalf("400 was retried: %d requests", hits.Load())
	}
}

// TestClientAttemptsCapped: a service that never recovers costs exactly
// MaxAttempts requests and reports them.
func TestClientAttemptsCapped(t *testing.T) {
	ts, hits := fakeVerify(t, func(n int, w http.ResponseWriter) bool {
		http.Error(w, "down", http.StatusServiceUnavailable)
		return true
	})
	cfg := fastConfig(ts.URL)
	cfg.MaxAttempts = 3
	c := newTestClient(t, cfg)
	_, err := c.Verify(context.Background(), VerifyRequest{})
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("err = %v", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3", hits.Load())
	}
}

// TestClientHonorsRetryAfter: a 429 carrying Retry-After: 1 delays the
// retry by at least the server's hint, far beyond the 4ms backoff cap.
func TestClientHonorsRetryAfter(t *testing.T) {
	ts, _ := fakeVerify(t, func(n int, w http.ResponseWriter) bool {
		if n == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return true
		}
		return false
	})
	c := newTestClient(t, fastConfig(ts.URL))
	start := time.Now()
	if _, err := c.Verify(context.Background(), VerifyRequest{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retried after %v, ignoring Retry-After: 1", elapsed)
	}
}

// TestClientRetryAfterParsing: the header reaches HTTPError.RetryAfter.
func TestClientRetryAfterParsing(t *testing.T) {
	ts, _ := fakeVerify(t, func(n int, w http.ResponseWriter) bool {
		w.Header().Set("Retry-After", "7")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return true
	})
	cfg := fastConfig(ts.URL)
	cfg.MaxAttempts = 1
	c := newTestClient(t, cfg)
	_, err := c.Verify(context.Background(), VerifyRequest{})
	var he *HTTPError
	if !errors.As(err, &he) {
		t.Fatalf("err = %v", err)
	}
	if he.Status != http.StatusServiceUnavailable || he.RetryAfter != 7*time.Second {
		t.Fatalf("HTTPError %+v", he)
	}
}

// TestClientTruncatedBodyRetried: a 200 whose body dies mid-read is a
// transport fault; the retry converges on the real answer.
func TestClientTruncatedBodyRetried(t *testing.T) {
	ts, hits := fakeVerify(t, func(n int, w http.ResponseWriter) bool {
		if n == 1 {
			full, _ := json.Marshal(VerifyResponse{Verified: true})
			w.Header().Set("Content-Length", strconv.Itoa(len(full)))
			w.WriteHeader(http.StatusOK)
			w.Write(full[:len(full)/2])
			return true
		}
		return false
	})
	c := newTestClient(t, fastConfig(ts.URL))
	resp, err := c.Verify(context.Background(), VerifyRequest{})
	if err != nil || !resp.Verified {
		t.Fatalf("verify after truncation: %v, %+v", err, resp)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2", hits.Load())
	}
}

// TestClientBreakerTripsAndRecovers: repeated failures open the breaker
// (fail-fast observed), a healthy service closes it through the
// half-open probe, and both transitions are counted.
func TestClientBreakerTripsAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	ts, _ := fakeVerify(t, func(n int, w http.ResponseWriter) bool {
		if !healthy.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return true
		}
		return false
	})
	cfg := fastConfig(ts.URL)
	cfg.MaxAttempts = 2
	cfg.Breaker = BreakerConfig{ConsecutiveFailures: 2, OpenTimeout: 20 * time.Millisecond, HalfOpenSuccesses: 1}
	c := newTestClient(t, cfg)

	if _, err := c.Verify(context.Background(), VerifyRequest{}); err == nil {
		t.Fatal("sick service answered")
	}
	if c.BreakerState() != "open" {
		t.Fatalf("breaker %s after consecutive failures, want open", c.BreakerState())
	}

	// While open, a short-deadline call fails fast without a request.
	before := c.Counters().Attempts
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := c.Verify(ctx, VerifyRequest{})
	if err == nil || !strings.Contains(err.Error(), "circuit breaker open") {
		t.Fatalf("open-breaker call: %v", err)
	}
	if got := c.Counters(); got.Attempts != before || got.BreakerFastFails == 0 {
		t.Fatalf("open breaker still sent requests: %+v", got)
	}

	// Service recovers; the half-open probe closes the breaker.
	healthy.Store(true)
	time.Sleep(25 * time.Millisecond)
	if resp, err := c.Verify(context.Background(), VerifyRequest{}); err != nil || !resp.Verified {
		t.Fatalf("post-recovery verify: %v", err)
	}
	if c.BreakerState() != "closed" {
		t.Fatalf("breaker %s after recovery, want closed", c.BreakerState())
	}
	cs := c.Counters()
	if cs.BreakerOpens < 1 || cs.BreakerCloses < 1 {
		t.Fatalf("transition counters %+v", cs)
	}
}

// TestClientDetectChunkingPartialResults: one poisoned chunk exhausts
// its attempts; every other chunk's rows arrive intact and the failure
// is reported per chunk, not per batch.
func TestClientDetectChunkingPartialResults(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req lwmapi.DetectRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decode: %v", err)
		}
		for _, sp := range req.Suspects {
			if strings.Contains(sp.Design, "poison") {
				http.Error(w, "injected", http.StatusInternalServerError)
				return
			}
		}
		out := lwmapi.DetectResponse{Results: make([][]DetectOutcome, len(req.Suspects))}
		for i, sp := range req.Suspects {
			out.Results[i] = []DetectOutcome{{Found: true, Root: sp.Design, Total: 4, Satisfied: 4, Pc: "10^-3.0"}}
			out.Detected++
		}
		json.NewEncoder(w).Encode(out)
	}))
	defer ts.Close()
	cfg := fastConfig(ts.URL)
	cfg.MaxAttempts = 2
	c := newTestClient(t, cfg)

	req := DetectRequest{
		Suspects:  []Suspect{{Design: "s0"}, {Design: "s1"}, {Design: "poison"}, {Design: "s3"}},
		Records:   make([]Record, 1),
		ChunkSize: 1,
	}
	res, err := c.Detect(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete() || len(res.Failed) != 1 {
		t.Fatalf("failed chunks: %v", res.Failed)
	}
	if res.Failed[0].Start != 2 || res.Failed[0].End != 3 {
		t.Fatalf("failed chunk range [%d,%d)", res.Failed[0].Start, res.Failed[0].End)
	}
	if res.Results[2] != nil {
		t.Fatal("poisoned suspect has results")
	}
	for _, i := range []int{0, 1, 3} {
		if len(res.Results[i]) != 1 || !res.Results[i][0].Found || res.Results[i][0].Root != fmt.Sprintf("s%d", i) {
			t.Fatalf("row %d: %+v", i, res.Results[i])
		}
	}
	if res.Detected != 3 {
		t.Fatalf("detected %d, want 3", res.Detected)
	}
}

// TestClientDetectRowCountMismatch: a malformed grid is a chunk error,
// never a silent misalignment of suspect rows.
func TestClientDetectRowCountMismatch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(lwmapi.DetectResponse{Results: [][]DetectOutcome{{}, {}, {}}})
	}))
	defer ts.Close()
	c := newTestClient(t, fastConfig(ts.URL))
	res, err := c.Detect(context.Background(), DetectRequest{
		Suspects: []Suspect{{Design: "a"}}, Records: make([]Record, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete() || !strings.Contains(res.Failed[0].Err.Error(), "3 rows for 1 suspects") {
		t.Fatalf("result %+v", res)
	}
}

// TestClientValidation: constructor and input guards.
func TestClientValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty BaseURL accepted")
	}
	c := newTestClient(t, fastConfig("127.0.0.1:1"))
	if _, err := c.Detect(context.Background(), DetectRequest{Records: make([]Record, 1)}); err == nil {
		t.Fatal("no suspects accepted")
	}
	if _, err := c.Detect(context.Background(), DetectRequest{Suspects: []Suspect{{}}}); err == nil {
		t.Fatal("no records accepted")
	}
	// Bare host:port gets a scheme.
	if c.base != "http://127.0.0.1:1" {
		t.Fatalf("base = %q", c.base)
	}
}

// TestClientCallTimeoutBoundsRetries: an unreachable service cannot hold
// a call past its overall deadline.
func TestClientCallTimeoutBoundsRetries(t *testing.T) {
	cfg := fastConfig("http://127.0.0.1:1") // nothing listens on port 1
	cfg.CallTimeout = 50 * time.Millisecond
	cfg.MaxAttempts = 1 << 20
	c := newTestClient(t, cfg)
	start := time.Now()
	_, err := c.Verify(context.Background(), VerifyRequest{})
	if err == nil {
		t.Fatal("unreachable service answered")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("call ran %v past its 50ms deadline", elapsed)
	}
}
