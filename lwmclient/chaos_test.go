// Chaos suite: the resilience acceptance tests. A real daemon (the same
// internal/server the lwmd binary mounts) runs with the internal/chaos
// fault injector enabled — seeded latency, connection resets, 500s, and
// truncated bodies — and the resilient client must converge to results
// byte-identical to a fault-free service, with bounded attempts and the
// circuit breaker observed to open and re-close. This is the systems
// analogue of the paper's thesis: many small, independently detectable
// pieces survive partial loss.
//
// Determinism: the injector's fault sequence is a pure function of the
// seed and request arrival order, and the client sends sequentially, so
// these tests replay the same fault pattern every run.
package lwmclient_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"localwm/internal/cdfg"
	"localwm/internal/chaos"
	"localwm/internal/designs"
	"localwm/internal/sched"
	"localwm/internal/schedwm"
	"localwm/internal/server"
	"localwm/lwmapi"
	"localwm/lwmclient"
)

// fixture is one marked design with everything detect/verify needs, all
// produced through the sequential engine path.
type fixture struct {
	designText   string
	scheduleText string
	records      []lwmclient.Record
}

func makeFixture(t *testing.T, sig string) *fixture {
	t.Helper()
	g := designs.DAConverter()
	var orig bytes.Buffer
	if err := cdfg.Write(&orig, g); err != nil {
		t.Fatal(err)
	}
	cp, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	cfg := schedwm.Config{Tau: 16, K: 3, Epsilon: 0.4, Budget: cp + cp/10 + 1}
	marked := g.Clone()
	wms, err := schedwm.EmbedMany(marked, []byte(sig), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ListSchedule(marked, sched.ListOpts{UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	var schedText bytes.Buffer
	if err := sched.WriteSchedule(&schedText, marked, s); err != nil {
		t.Fatal(err)
	}
	fx := &fixture{designText: orig.String(), scheduleText: schedText.String()}
	for _, wm := range wms {
		fx.records = append(fx.records, lwmapi.FromSchedRecord(wm.Record()))
	}
	return fx
}

// chaosMix is the suite's fault configuration: ~37% of requests get a
// hard fault (reset, 500, or truncation), plus added latency.
func chaosMix(seed int64) chaos.Config {
	return chaos.Config{
		Seed:       seed,
		PLatency:   0.20,
		MaxLatency: 3 * time.Millisecond,
		PReset:     0.15,
		PError:     0.15,
		PTruncate:  0.15,
	}
}

// resilientClient builds a client tuned for the suite: chunked singly,
// quick backoff, and a hair-trigger breaker (one failure opens it) so
// the open→half-open→closed cycle is guaranteed to be observed.
func resilientClient(t *testing.T, url string) *lwmclient.Client {
	t.Helper()
	c, err := lwmclient.New(lwmclient.Config{
		BaseURL: url,
		// Keep-alives off so transport-level resets surface to the
		// retry loop instead of being silently replayed by net/http.
		HTTPClient:     &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		MaxAttempts:    8,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     4 * time.Millisecond,
		AttemptTimeout: 30 * time.Second,
		CallTimeout:    60 * time.Second,
		ChunkSize:      1,
		Breaker: lwmclient.BreakerConfig{
			ConsecutiveFailures: 1,
			OpenTimeout:         2 * time.Millisecond,
			HalfOpenSuccesses:   1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestChaosBatchDetectConvergesByteIdentical is the acceptance test:
// with >20% of requests hard-faulted, a chunked batch detect completes
// with every row byte-identical to the fault-free service (itself pinned
// byte-identical to the sequential engine path by the internal/server
// suite), attempts bounded by the configured cap, and the breaker
// observed to open and re-close.
func TestChaosBatchDetectConvergesByteIdentical(t *testing.T) {
	fx := makeFixture(t, "chaos-detect")
	inj := chaos.New(chaosMix(2026))
	srv := server.New(server.Config{EngineWorkers: 2, Chaos: inj})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	// Fault-free reference service for the expected grid.
	refSrv := server.New(server.Config{EngineWorkers: 2})
	refTS := httptest.NewServer(refSrv.Handler())
	defer refTS.Close()
	defer refSrv.Shutdown(context.Background())

	const suspects = 12
	req := lwmclient.DetectRequest{Records: fx.records}
	for i := 0; i < suspects; i++ {
		req.Suspects = append(req.Suspects, lwmclient.Suspect{Design: fx.designText, Schedule: fx.scheduleText})
	}

	refClient := resilientClient(t, refTS.URL)
	want, err := refClient.Detect(context.Background(), req)
	if err != nil || !want.Complete() {
		t.Fatalf("reference detect: %v, failed chunks %v", err, want.Failed)
	}
	if rc := refClient.Counters(); rc.Attempts != suspects || rc.Retries != 0 {
		t.Fatalf("fault-free service still cost retries: %+v", rc)
	}

	c := resilientClient(t, ts.URL)
	got, err := c.Detect(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Complete() {
		t.Fatalf("batch incomplete under chaos: %v", got.Failed)
	}

	wantJSON, _ := json.Marshal(want.Results)
	gotJSON, _ := json.Marshal(got.Results)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("chaos results diverged from fault-free service:\ngot  %s\nwant %s", gotJSON, wantJSON)
	}
	if got.Detected != want.Detected || got.Detected != suspects*len(fx.records) {
		t.Fatalf("detected %d, want %d", got.Detected, want.Detected)
	}

	cs := c.Counters()
	if cs.Attempts > suspects*8 {
		t.Fatalf("attempts %d exceed the %d cap", cs.Attempts, suspects*8)
	}
	if cs.Retries == 0 {
		t.Fatal("no retries under a 37% fault rate — injection did not reach the client")
	}
	if cs.BreakerOpens < 1 || cs.BreakerCloses < 1 {
		t.Fatalf("breaker never cycled: %+v", cs)
	}
	if c.BreakerState() != "closed" {
		t.Fatalf("breaker finished %s, want closed", c.BreakerState())
	}

	ic := inj.Counters()
	if ic.Faulted()*5 < ic.Requests {
		t.Fatalf("injected fault rate below 20%%: %+v", ic)
	}
	t.Logf("chaos: %d requests, %d faulted (%d resets, %d 500s, %d truncations); client: %d attempts, %d retries, breaker opened %d closed %d",
		ic.Requests, ic.Faulted(), ic.Resets, ic.Errors, ic.Truncations,
		cs.Attempts, cs.Retries, cs.BreakerOpens, cs.BreakerCloses)
}

// TestChaosEmbedVerifyRoundTrip: embed and verify through the faulted
// daemon; the marked design must be byte-identical to the sequential
// embedding and the ownership verdict must hold.
func TestChaosEmbedVerifyRoundTrip(t *testing.T) {
	g := designs.DAConverter()
	var designText bytes.Buffer
	if err := cdfg.Write(&designText, g); err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(chaosMix(7))
	srv := server.New(server.Config{EngineWorkers: 2, Chaos: inj})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())
	c := resilientClient(t, ts.URL)

	params := lwmclient.MarkParams{N: 2, Tau: 16, K: 3, Epsilon: 0.4}
	er, err := c.Embed(context.Background(), lwmclient.EmbedRequest{
		Design: designText.String(), Signature: "owner", MarkParams: params,
	})
	if err != nil {
		t.Fatalf("embed under chaos: %v", err)
	}
	if er.Watermarks != 2 || len(er.Records) != 2 {
		t.Fatalf("embed response: %+v", er)
	}

	// Sequential reference embedding.
	ref := g.Clone()
	cp, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := schedwm.EmbedMany(ref, []byte("owner"),
		schedwm.Config{Tau: 16, K: 3, Epsilon: 0.4, Budget: cp + cp/10 + 1}, 2); err != nil {
		t.Fatal(err)
	}
	var refText bytes.Buffer
	if err := cdfg.Write(&refText, ref); err != nil {
		t.Fatal(err)
	}
	if er.MarkedDesign != refText.String() {
		t.Fatal("chaos-path embedding diverged from the sequential embedding")
	}

	// Schedule locally, adjudicate over the faulted wire.
	markedG, err := cdfg.Parse(strings.NewReader(er.MarkedDesign))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ListSchedule(markedG, sched.ListOpts{UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	var schedText bytes.Buffer
	if err := sched.WriteSchedule(&schedText, markedG, s); err != nil {
		t.Fatal(err)
	}
	vr, err := c.Verify(context.Background(), lwmclient.VerifyRequest{
		Design: designText.String(), Schedule: schedText.String(),
		Signature: "owner", MarkParams: params,
	})
	if err != nil {
		t.Fatalf("verify under chaos: %v", err)
	}
	if !vr.Verified {
		t.Fatalf("ownership claim not verified: %+v", vr)
	}
	if ic := inj.Counters(); ic.Faulted() == 0 {
		t.Fatalf("no faults injected: %+v", ic)
	}
}

// TestChaosCountersOnStatsEndpoint: the daemon snapshot carries the
// injected-fault counters (and /v1/stats itself is never injected).
func TestChaosCountersOnStatsEndpoint(t *testing.T) {
	fx := makeFixture(t, "chaos-stats")
	inj := chaos.New(chaos.Config{Seed: 3, PError: 1})
	srv := server.New(server.Config{Chaos: inj})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	body, _ := json.Marshal(map[string]any{
		"suspects": []map[string]string{{"design": fx.designText, "schedule": fx.scheduleText}},
		"records":  fx.records,
	})
	resp, err := http.Post(ts.URL+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("PError=1 detect = %d, want 500", resp.StatusCode)
	}

	sr, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(sr.Body)
	sr.Body.Close()
	if sr.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats through chaos wiring = %d", sr.StatusCode)
	}
	var snap struct {
		Chaos struct {
			Requests  uint64 `json:"requests"`
			Errors500 uint64 `json:"errors_500"`
		} `json:"chaos"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("stats payload: %v: %s", err, data)
	}
	if snap.Chaos.Requests != 1 || snap.Chaos.Errors500 != 1 {
		t.Fatalf("chaos counters on snapshot: %+v", snap.Chaos)
	}
}

// TestChaosDisabledByteIdentical: a server with no injector and one with
// an injector whose probabilities are all zero answer byte-identically —
// the chaos layer off the fault path is transparent, and absent (nil)
// it is not even wired in.
func TestChaosDisabledByteIdentical(t *testing.T) {
	fx := makeFixture(t, "chaos-off")
	plain := server.New(server.Config{EngineWorkers: 2})
	zeroed := server.New(server.Config{EngineWorkers: 2, Chaos: chaos.New(chaos.Config{Seed: 99})})
	tsPlain := httptest.NewServer(plain.Handler())
	tsZero := httptest.NewServer(zeroed.Handler())
	defer tsPlain.Close()
	defer tsZero.Close()
	defer plain.Shutdown(context.Background())
	defer zeroed.Shutdown(context.Background())

	body, _ := json.Marshal(map[string]any{
		"suspects": []map[string]string{{"design": fx.designText, "schedule": fx.scheduleText}},
		"records":  fx.records,
	})
	fetch := func(url string) []byte {
		resp, err := http.Post(url+"/v1/detect", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("detect = %d", resp.StatusCode)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := fetch(tsPlain.URL), fetch(tsZero.URL)
	if !bytes.Equal(a, b) {
		t.Fatalf("zero-probability chaos layer changed response bytes:\nplain %s\nzero  %s", a, b)
	}
}
