package lwmclient

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen is returned (wrapped) when the circuit breaker is open
// and the client refuses to send a request. The retry loop waits out the
// open interval instead of surfacing this to callers unless the overall
// call deadline expires first.
var ErrBreakerOpen = errors.New("lwmclient: circuit breaker open")

// BreakerConfig parameterizes the client's rolling-window circuit
// breaker. The zero value takes the documented defaults.
type BreakerConfig struct {
	// Window is the rolling outcome window size. Default 16.
	Window int
	// FailureFraction opens the breaker when at least this fraction of a
	// *full* window failed. Default 0.5.
	FailureFraction float64
	// ConsecutiveFailures opens the breaker after this many consecutive
	// failures regardless of window state. Default 5.
	ConsecutiveFailures int
	// OpenTimeout is how long the breaker stays open before allowing a
	// half-open probe. Default 1s.
	OpenTimeout time.Duration
	// HalfOpenSuccesses is how many consecutive probe successes close
	// the breaker again. Default 2.
	HalfOpenSuccesses int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.FailureFraction <= 0 || c.FailureFraction > 1 {
		c.FailureFraction = 0.5
	}
	if c.ConsecutiveFailures <= 0 {
		c.ConsecutiveFailures = 5
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = time.Second
	}
	if c.HalfOpenSuccesses <= 0 {
		c.HalfOpenSuccesses = 2
	}
	return c
}

// Breaker states.
const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

// breaker is a rolling-window circuit breaker: closed until either N
// consecutive failures or a failure fraction over a full window, then
// open for OpenTimeout, then half-open admitting one probe at a time
// until HalfOpenSuccesses probes in a row succeed (back to closed) or
// one fails (back to open).
type breaker struct {
	cfg BreakerConfig

	mu            sync.Mutex
	state         int
	window        []bool // ring of outcomes; true = failure
	next, filled  int
	failures      int // failures currently in the window
	consecutive   int
	openedAt      time.Time
	probeInFlight bool
	probeOK       int
	opens, closes uint64
}

func newBreaker(cfg BreakerConfig) *breaker {
	cfg = cfg.withDefaults()
	return &breaker{cfg: cfg, window: make([]bool, cfg.Window)}
}

// allow reports whether a request may be sent now. When it may not, it
// returns ErrBreakerOpen and how long to wait before asking again.
func (b *breaker) allow(now time.Time) (time.Duration, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return 0, nil
	case stateOpen:
		since := now.Sub(b.openedAt)
		if since < b.cfg.OpenTimeout {
			return b.cfg.OpenTimeout - since, ErrBreakerOpen
		}
		// Open interval served: admit exactly one half-open probe.
		b.state = stateHalfOpen
		b.probeOK = 0
		b.probeInFlight = true
		return 0, nil
	default: // stateHalfOpen
		if b.probeInFlight {
			wait := b.cfg.OpenTimeout / 4
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			return wait, ErrBreakerOpen
		}
		b.probeInFlight = true
		return 0, nil
	}
}

// record feeds one request outcome back. Callers report success=false
// only for transient service failures; a definite answer (2xx, or a 4xx
// the service produced deliberately) counts as success for breaker
// purposes even when the call itself errors. The returned transition is
// "opened" or "closed" when this outcome tripped or restored the
// breaker, else "" — the client logs non-empty transitions.
func (b *breaker) record(success bool, now time.Time) (transition string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateHalfOpen:
		b.probeInFlight = false
		if !success {
			b.toOpen(now)
			return "opened"
		}
		b.probeOK++
		if b.probeOK >= b.cfg.HalfOpenSuccesses {
			b.toClosed()
			return "closed"
		}
	case stateClosed:
		if b.filled == len(b.window) {
			if b.window[b.next] {
				b.failures--
			}
		} else {
			b.filled++
		}
		b.window[b.next] = !success
		if !success {
			b.failures++
			b.consecutive++
		} else {
			b.consecutive = 0
		}
		b.next = (b.next + 1) % len(b.window)
		if b.consecutive >= b.cfg.ConsecutiveFailures ||
			(b.filled == len(b.window) &&
				float64(b.failures) >= b.cfg.FailureFraction*float64(len(b.window))) {
			b.toOpen(now)
			return "opened"
		}
	default:
		// stateOpen: a straggler finishing after the trip; no new signal.
	}
	return ""
}

// toOpen trips the breaker, forgetting window history so the next closed
// period starts clean. Caller holds mu.
func (b *breaker) toOpen(now time.Time) {
	b.state = stateOpen
	b.openedAt = now
	b.opens++
	b.resetWindow()
}

// toClosed closes the breaker after successful probes. Caller holds mu.
func (b *breaker) toClosed() {
	b.state = stateClosed
	b.closes++
	b.probeInFlight = false
	b.resetWindow()
}

func (b *breaker) resetWindow() {
	for i := range b.window {
		b.window[i] = false
	}
	b.next, b.filled, b.failures, b.consecutive = 0, 0, 0, 0
}

// State reports the breaker state as a string: "closed", "open", or
// "half-open".
func (b *breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// stats returns cumulative open/close transition counts.
func (b *breaker) stats() (opens, closes uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens, b.closes
}
