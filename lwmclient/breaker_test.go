package lwmclient

import (
	"errors"
	"testing"
	"time"
)

func tick(t0 time.Time, d time.Duration) time.Time { return t0.Add(d) }

// TestBreakerConsecutiveFailuresOpen: N consecutive failures trip the
// breaker even with a mostly-healthy window.
func TestBreakerConsecutiveFailuresOpen(t *testing.T) {
	b := newBreaker(BreakerConfig{Window: 32, ConsecutiveFailures: 3, OpenTimeout: time.Second})
	now := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		if _, err := b.allow(now); err != nil {
			t.Fatalf("healthy allow %d: %v", i, err)
		}
		b.record(true, now)
	}
	for i := 0; i < 3; i++ {
		if b.State() != "closed" {
			t.Fatalf("opened after only %d consecutive failures", i)
		}
		if _, err := b.allow(now); err != nil {
			t.Fatal(err)
		}
		b.record(false, now)
	}
	if b.State() != "open" {
		t.Fatalf("state %s after 3 consecutive failures, want open", b.State())
	}
	if _, err := b.allow(now); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker allowed a send: %v", err)
	}
	if opens, _ := b.stats(); opens != 1 {
		t.Fatalf("opens = %d", opens)
	}
}

// TestBreakerFractionalOpen: half a full window failing trips the
// breaker even when failures never run consecutively.
func TestBreakerFractionalOpen(t *testing.T) {
	b := newBreaker(BreakerConfig{Window: 8, FailureFraction: 0.5,
		ConsecutiveFailures: 100, OpenTimeout: time.Second})
	now := time.Unix(0, 0)
	// Alternate success/failure: 4 failures in a full window of 8.
	for i := 0; i < 8; i++ {
		if _, err := b.allow(now); err != nil {
			t.Fatalf("allow %d while %s: %v", i, b.State(), err)
		}
		b.record(i%2 == 0, now)
	}
	if b.State() != "open" {
		t.Fatalf("state %s after 4/8 windowed failures, want open", b.State())
	}
}

// TestBreakerHalfOpenProbeRecovery: open waits out OpenTimeout, admits
// one probe at a time, and closes after HalfOpenSuccesses successes.
func TestBreakerHalfOpenProbeRecovery(t *testing.T) {
	b := newBreaker(BreakerConfig{Window: 4, ConsecutiveFailures: 1,
		OpenTimeout: time.Second, HalfOpenSuccesses: 2})
	t0 := time.Unix(0, 0)
	b.allow(t0)
	b.record(false, t0) // trips immediately
	if b.State() != "open" {
		t.Fatalf("state %s, want open", b.State())
	}
	if wait, err := b.allow(tick(t0, 300*time.Millisecond)); !errors.Is(err, ErrBreakerOpen) || wait != 700*time.Millisecond {
		t.Fatalf("open allow: wait %v err %v", wait, err)
	}
	// OpenTimeout served: exactly one probe admitted.
	if _, err := b.allow(tick(t0, time.Second)); err != nil {
		t.Fatalf("probe not admitted: %v", err)
	}
	if b.State() != "half-open" {
		t.Fatalf("state %s, want half-open", b.State())
	}
	if _, err := b.allow(tick(t0, time.Second)); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("second concurrent probe admitted")
	}
	b.record(true, tick(t0, time.Second))
	if b.State() != "half-open" {
		t.Fatal("closed after 1 of 2 required probe successes")
	}
	if _, err := b.allow(tick(t0, time.Second)); err != nil {
		t.Fatalf("second probe not admitted: %v", err)
	}
	b.record(true, tick(t0, time.Second))
	if b.State() != "closed" {
		t.Fatalf("state %s after probe successes, want closed", b.State())
	}
	opens, closes := b.stats()
	if opens != 1 || closes != 1 {
		t.Fatalf("opens %d closes %d", opens, closes)
	}
}

// TestBreakerProbeFailureReopens: a failed half-open probe goes straight
// back to open with a fresh open interval.
func TestBreakerProbeFailureReopens(t *testing.T) {
	b := newBreaker(BreakerConfig{ConsecutiveFailures: 1, OpenTimeout: time.Second})
	t0 := time.Unix(0, 0)
	b.allow(t0)
	b.record(false, t0)
	if _, err := b.allow(tick(t0, time.Second)); err != nil {
		t.Fatalf("probe: %v", err)
	}
	b.record(false, tick(t0, time.Second))
	if b.State() != "open" {
		t.Fatalf("state %s after failed probe, want open", b.State())
	}
	// The open interval restarts from the failed probe.
	if _, err := b.allow(tick(t0, 1500*time.Millisecond)); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("reopened breaker admitted a send before its fresh interval elapsed")
	}
	if opens, _ := b.stats(); opens != 2 {
		t.Fatalf("opens = %d, want 2", opens)
	}
}

// TestBreakerWindowForgets: after the breaker recovers, old failures do
// not haunt the fresh window.
func TestBreakerWindowForgets(t *testing.T) {
	b := newBreaker(BreakerConfig{Window: 4, FailureFraction: 0.5,
		ConsecutiveFailures: 2, OpenTimeout: time.Second, HalfOpenSuccesses: 1})
	t0 := time.Unix(0, 0)
	b.allow(t0)
	b.record(false, t0)
	b.allow(t0)
	b.record(false, t0) // trip
	b.allow(tick(t0, time.Second))
	b.record(true, tick(t0, time.Second)) // probe closes it
	if b.State() != "closed" {
		t.Fatalf("state %s, want closed", b.State())
	}
	// One failure now must not re-trip (consecutive counter was reset).
	b.allow(tick(t0, 2*time.Second))
	b.record(false, tick(t0, 2*time.Second))
	if b.State() != "closed" {
		t.Fatal("stale failure history re-tripped a recovered breaker")
	}
}
