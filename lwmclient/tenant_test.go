package lwmclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"localwm/lwmapi"
)

// Tenant-aware client behavior: the API key rides every attempt, derived
// clients share the breaker and counters, and a tenant rate-limit 429
// backs off without counting as breaker pressure — one throttled tenant
// must not trip the breaker for every caller sharing the process.

func TestClientSendsAPIKey(t *testing.T) {
	var mu sync.Mutex
	var keys []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		keys = append(keys, r.Header.Get(lwmapi.APIKeyHeader))
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(VerifyResponse{Verified: true})
	}))
	defer ts.Close()

	base := newTestClient(t, fastConfig(ts.URL))
	keyed := base.WithAPIKey("tenant-key-123")

	if _, err := base.Verify(context.Background(), VerifyRequest{}); err != nil {
		t.Fatalf("anonymous verify: %v", err)
	}
	if _, err := keyed.Verify(context.Background(), VerifyRequest{}); err != nil {
		t.Fatalf("keyed verify: %v", err)
	}

	mu.Lock()
	got := append([]string(nil), keys...)
	mu.Unlock()
	if len(got) != 2 || got[0] != "" || got[1] != "tenant-key-123" {
		t.Fatalf("server saw API keys %q, want [\"\" \"tenant-key-123\"]", got)
	}

	// Derived clients share cumulative counters (and the breaker behind
	// them): both views report the combined two attempts.
	if bc, kc := base.Counters(), keyed.Counters(); bc.Attempts != 2 || kc.Attempts != 2 {
		t.Fatalf("counters not shared: base %+v, keyed %+v", bc, kc)
	}
}

func TestClientTenant429IsBackoffNotBreakerPressure(t *testing.T) {
	serve := func(code string) func(n int, w http.ResponseWriter) bool {
		return func(n int, w http.ResponseWriter) bool {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(lwmapi.Error{Code: code, Message: "throttled"})
			return true
		}
	}
	breaker := BreakerConfig{
		ConsecutiveFailures: 2,
		OpenTimeout:         5 * time.Millisecond,
		HalfOpenSuccesses:   1,
	}

	// tenant_rate_limited: every attempt reaches the wire — the breaker
	// records the answers as successes, so it never opens and never
	// fast-fails — and the final error carries the tenant sentinel.
	t.Run("tenant_rate_limited", func(t *testing.T) {
		ts, hits := fakeVerify(t, serve(lwmapi.CodeTenantRateLimited))
		cfg := fastConfig(ts.URL)
		cfg.Breaker = breaker
		c := newTestClient(t, cfg)
		_, err := c.Verify(context.Background(), VerifyRequest{})
		if err == nil || !strings.Contains(err.Error(), "after 4 attempts") {
			t.Fatalf("err = %v, want failure after 4 attempts", err)
		}
		if !errors.Is(err, ErrTenantRateLimited) {
			t.Fatalf("err = %v, want ErrTenantRateLimited", err)
		}
		if got := hits.Load(); got != 4 {
			t.Fatalf("server saw %d requests, want all 4 attempts", got)
		}
		cs := c.Counters()
		if cs.BreakerOpens != 0 || cs.BreakerFastFails != 0 {
			t.Fatalf("tenant 429 tripped the breaker: %+v", cs)
		}
	})

	// queue_full: the same 429 status but the daemon-wide code means the
	// service itself is saturated — genuine breaker pressure, so the
	// breaker opens after the configured consecutive failures.
	t.Run("queue_full", func(t *testing.T) {
		ts, _ := fakeVerify(t, serve(lwmapi.CodeQueueFull))
		cfg := fastConfig(ts.URL)
		cfg.Breaker = breaker
		c := newTestClient(t, cfg)
		_, err := c.Verify(context.Background(), VerifyRequest{})
		if err == nil || !errors.Is(err, ErrQueueFull) {
			t.Fatalf("err = %v, want ErrQueueFull failure", err)
		}
		if cs := c.Counters(); cs.BreakerOpens == 0 {
			t.Fatalf("queue-full 429s never opened the breaker: %+v", cs)
		}
	})
}
