package lwmclient

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"localwm/internal/obs"
)

// logSink is a goroutine-safe buffer for the client's structured logs.
type logSink struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (s *logSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Write(p)
}

func (s *logSink) lines(t *testing.T) []map[string]any {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []map[string]any
	for _, line := range strings.Split(s.buf.String(), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("unparseable client log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// TestClientTraceHeaderAndLogCorrelation: every HTTP attempt of one call
// carries the same X-Lwm-Trace-Id, and every log line the client emits
// for that call — attempts, backoffs — carries that same ID.
func TestClientTraceHeaderAndLogCorrelation(t *testing.T) {
	var mu sync.Mutex
	var headerIDs []string
	ts, hits := fakeVerify(t, func(n int, w http.ResponseWriter) bool {
		if n <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			return true
		}
		return false
	})
	base := ts.Config.Handler
	ts.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		headerIDs = append(headerIDs, r.Header.Get(obs.TraceHeader))
		mu.Unlock()
		base.ServeHTTP(w, r)
	})

	sink := &logSink{}
	cfg := fastConfig(ts.URL)
	cfg.Logger = slog.New(slog.NewJSONHandler(sink, nil))
	c := newTestClient(t, cfg)

	if _, err := c.Verify(context.Background(), VerifyRequest{}); err != nil {
		t.Fatal(err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}

	mu.Lock()
	ids := append([]string(nil), headerIDs...)
	mu.Unlock()
	if len(ids) != 3 {
		t.Fatalf("captured %d trace headers, want 3", len(ids))
	}
	for _, id := range ids {
		if id == "" || id != ids[0] {
			t.Fatalf("attempt trace IDs not one shared non-empty ID: %v", ids)
		}
	}

	lines := sink.lines(t)
	var attempts, backoffs int
	for _, line := range lines {
		if line["trace_id"] != ids[0] {
			t.Fatalf("log line with foreign trace_id %v (want %v): %v", line["trace_id"], ids[0], line)
		}
		switch line["msg"] {
		case "attempt":
			attempts++
		case "backoff":
			backoffs++
		}
	}
	if attempts != 3 || backoffs != 2 {
		t.Fatalf("logged %d attempts and %d backoffs, want 3 and 2:\n%v", attempts, backoffs, lines)
	}
}

// TestClientTraceFromContextPropagated: a caller-supplied trace governs
// the header — the client must join it, not mint a fresh ID.
func TestClientTraceFromContextPropagated(t *testing.T) {
	var mu sync.Mutex
	var gotID string
	ts, _ := fakeVerify(t, nil)
	base := ts.Config.Handler
	ts.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		gotID = r.Header.Get(obs.TraceHeader)
		mu.Unlock()
		base.ServeHTTP(w, r)
	})

	c := newTestClient(t, fastConfig(ts.URL))
	tr := obs.NewTrace("caller-chosen-id")
	ctx := obs.WithTrace(context.Background(), tr)
	if _, err := c.Verify(ctx, VerifyRequest{}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if gotID != "caller-chosen-id" {
		t.Fatalf("server saw trace ID %q, want caller-chosen-id", gotID)
	}
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("caller trace collected no client spans")
	}
	var sawCall, sawAttempt bool
	for _, sp := range spans {
		if strings.HasPrefix(sp.Name, "call ") {
			sawCall = true
		}
		if strings.HasPrefix(sp.Name, "attempt ") {
			sawAttempt = true
		}
	}
	if !sawCall || !sawAttempt {
		t.Fatalf("trace missing call/attempt spans: %v", spanNames(spans))
	}
}

func spanNames(spans []*obs.Span) []string {
	names := make([]string, len(spans))
	for i, sp := range spans {
		names[i] = sp.Name
	}
	return names
}

// TestClientWritePrometheus: the client-side registry exposes the retry
// and breaker counters in scrapeable form.
func TestClientWritePrometheus(t *testing.T) {
	ts, _ := fakeVerify(t, func(n int, w http.ResponseWriter) bool {
		if n == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			return true
		}
		return false
	})
	c := newTestClient(t, fastConfig(ts.URL))
	if _, err := c.Verify(context.Background(), VerifyRequest{}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{
		"lwmclient_attempts_total 2",
		"lwmclient_retries_total 1",
		"lwmclient_breaker_open 0",
		"# TYPE lwmclient_attempts_total counter",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("WritePrometheus missing %q:\n%s", want, page)
		}
	}
}
