// Robustness-campaign client tests: RunCampaign against a real daemon,
// sync and queued, with the queued report collected via WaitCampaign and
// required to match the synchronous answer exactly.
package lwmclient_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"localwm/internal/server"
	"localwm/lwmapi"
	"localwm/lwmclient"
)

func campaignRequest(fx *fixture) lwmclient.RobustnessRequest {
	return lwmclient.RobustnessRequest{
		Design:     fx.designText,
		Signature:  "alice",
		MarkParams: lwmclient.MarkParams{N: 2, Tau: 16, K: 3, Epsilon: 0.4, Workers: 2},
		Seed:       "client-seed",
		Battery: lwmclient.BatterySpec{
			Attacks: []lwmclient.AttackSpec{
				{Family: lwmapi.AttackPerturb, Intensities: []int{3}},
				{Family: lwmapi.AttackReschedule, Intensities: []int{1}},
			},
			Trials: 1,
			Alpha:  1e-3,
		},
	}
}

// TestClientRunCampaignSyncAndQueued drives both dispatch paths through
// the public client: a synchronous campaign answers the report inline; a
// forced-async resubmission of the identical request answers a job whose
// awaited report equals the synchronous one.
func TestClientRunCampaignSyncAndQueued(t *testing.T) {
	fx := makeFixture(t, "alice")
	srv := server.New(server.Config{EngineWorkers: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	client, err := lwmclient.New(lwmclient.Config{
		BaseURL:     ts.URL,
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		HTTPClient:  ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sync, err := client.RunCampaign(ctx, campaignRequest(fx))
	if err != nil {
		t.Fatalf("sync campaign: %v", err)
	}
	if sync.Report == nil || sync.Job != nil {
		t.Fatalf("sync campaign answered %+v, want inline report", sync)
	}
	if sync.Report.Units != 2 || len(sync.Report.Families) != 2 {
		t.Fatalf("sync report shape: %+v", sync.Report)
	}

	req := campaignRequest(fx)
	req.Async = true
	queued, err := client.RunCampaign(ctx, req)
	if err != nil {
		t.Fatalf("queued campaign: %v", err)
	}
	if queued.Job == nil || queued.Report != nil {
		t.Fatalf("queued campaign answered %+v, want job status", queued)
	}
	rep, err := client.WaitCampaign(ctx, queued.Job.ID)
	if err != nil {
		t.Fatalf("waiting for campaign %s: %v", queued.Job.ID, err)
	}
	if !reflect.DeepEqual(rep, sync.Report) {
		syncJSON, _ := json.Marshal(sync.Report)
		asyncJSON, _ := json.Marshal(rep)
		t.Fatalf("queued report diverged from sync:\nsync  %s\nasync %s", syncJSON, asyncJSON)
	}
}
