package lwmclient

import (
	"context"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"localwm/lwmapi"
)

// Flight-recorder and profiling-observatory API: read the daemon's
// retained traces and resident pprof snapshots. On a tenanted daemon
// both surfaces are scoped to the calling tenant's API key.

// TraceEntry is one retained trace; list results omit Spans and
// EngineCounters (GetTrace returns the full entry).
type TraceEntry = lwmapi.TraceEntry

// TraceSpan is one node of a retained span tree.
type TraceSpan = lwmapi.TraceSpan

// ProfileInfo describes one resident pprof snapshot.
type ProfileInfo = lwmapi.ProfileInfo

// TraceFilter narrows ListTraces. Zero fields match everything.
type TraceFilter struct {
	// Endpoint filters by exact endpoint name (embed, detect, ...).
	Endpoint string
	// Result filters by result class (ok, error, timeout, ...).
	Result string
	// KeepReason filters by why the trace was retained: error, slow, or
	// sampled.
	KeepReason string
	// MinDuration keeps only entries at least this slow.
	MinDuration time.Duration
	// Limit caps the number of entries returned (server default 100).
	Limit int
}

func (f TraceFilter) query() string {
	q := url.Values{}
	if f.Endpoint != "" {
		q.Set("endpoint", f.Endpoint)
	}
	if f.Result != "" {
		q.Set("result", f.Result)
	}
	if f.KeepReason != "" {
		q.Set("reason", f.KeepReason)
	}
	if f.MinDuration > 0 {
		q.Set("min_duration", f.MinDuration.String())
	}
	if f.Limit > 0 {
		q.Set("limit", strconv.Itoa(f.Limit))
	}
	if len(q) == 0 {
		return ""
	}
	return "?" + q.Encode()
}

// ListTraces lists the daemon's retained traces, newest first
// (GET /v1/traces). Span trees are omitted; fetch one with GetTrace.
func (c *Client) ListTraces(ctx context.Context, f TraceFilter) ([]TraceEntry, error) {
	var out lwmapi.ListTracesResponse
	if err := c.do(ctx, http.MethodGet, "/v1/traces"+f.query(), nil, &out); err != nil {
		return nil, err
	}
	return out.Traces, nil
}

// GetTrace fetches one retained trace with its full span tree
// (GET /v1/traces/{id}). An ID the recorder did not retain — sampled
// out, evicted, or recording disabled — answers an error matching
// ErrTraceNotFound.
func (c *Client) GetTrace(ctx context.Context, id string) (*TraceEntry, error) {
	var out TraceEntry
	if err := c.do(ctx, http.MethodGet, "/v1/traces/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ListProfiles lists the daemon's resident pprof snapshots, newest
// first (GET /v1/profiles).
func (c *Client) ListProfiles(ctx context.Context) ([]ProfileInfo, error) {
	var out lwmapi.ListProfilesResponse
	if err := c.do(ctx, http.MethodGet, "/v1/profiles", nil, &out); err != nil {
		return nil, err
	}
	return out.Profiles, nil
}

// binaryBody marks a do() output as raw non-JSON bytes (a pprof
// snapshot), bypassing the JSON validity check the *[]byte path applies
// to raw JSON results.
type binaryBody struct{ buf *[]byte }

// GetProfile fetches one pprof snapshot's raw bytes
// (GET /v1/profiles/{name}), ready for `go tool pprof` or lwm's
// built-in reader. An unknown name answers an error matching
// ErrProfileNotFound.
func (c *Client) GetProfile(ctx context.Context, name string) ([]byte, error) {
	var raw []byte
	if err := c.do(ctx, http.MethodGet, "/v1/profiles/"+url.PathEscape(name), nil, &binaryBody{&raw}); err != nil {
		return nil, err
	}
	return raw, nil
}
