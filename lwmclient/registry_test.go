package lwmclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"localwm/lwmapi"
)

// writeAPIError emits the typed lwmapi error envelope the daemon sends.
func writeAPIError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(lwmapi.Error{
		Code: code, Message: msg, Retryable: lwmapi.RetryableStatus(status),
		LegacyMessage: msg, Status: status,
	})
}

// TestClientDetectRefResentInEveryChunk: suspects addressed by reference
// keep that reference in every chunk they land in — the client must not
// quietly re-inline the design text on later chunks (the text is held
// back as the ref-miss fallback only).
func TestClientDetectRefResentInEveryChunk(t *testing.T) {
	var (
		mu     sync.Mutex
		chunks []lwmapi.DetectRequest
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req lwmapi.DetectRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decode: %v", err)
		}
		mu.Lock()
		chunks = append(chunks, req)
		mu.Unlock()
		out := lwmapi.DetectResponse{Results: make([][]DetectOutcome, len(req.Suspects))}
		for i := range req.Suspects {
			out.Results[i] = []DetectOutcome{{Found: true, Total: 1, Satisfied: 1}}
			out.Detected++
		}
		json.NewEncoder(w).Encode(out)
	}))
	defer ts.Close()
	c := newTestClient(t, fastConfig(ts.URL))

	ref := strings.Repeat("ab", 32)
	req := DetectRequest{
		Suspects: []Suspect{
			{DesignRef: ref, Design: "node a in\n", Schedule: "s0"},
			{DesignRef: ref, Design: "node a in\n", Schedule: "s1"},
			{DesignRef: ref, Design: "node a in\n", Schedule: "s2"},
			{Design: "node b in\n", Schedule: "s3"}, // inline-only rides along untouched
		},
		Records:   make([]Record, 1),
		ChunkSize: 1,
	}
	res, err := c.Detect(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() || res.Detected != 4 {
		t.Fatalf("result %+v", res)
	}
	if len(chunks) != 4 {
		t.Fatalf("%d chunk requests, want 4", len(chunks))
	}
	for i, ch := range chunks {
		if len(ch.Suspects) != 1 {
			t.Fatalf("chunk %d has %d suspects", i, len(ch.Suspects))
		}
		sp := ch.Suspects[0]
		if sp.Schedule == "s3" {
			if sp.DesignRef != "" || sp.Design != "node b in\n" {
				t.Fatalf("inline-only suspect rewritten: %+v", sp)
			}
			continue
		}
		if sp.DesignRef != ref {
			t.Fatalf("chunk %d dropped the ref: %+v", i, sp)
		}
		if sp.Design != "" {
			t.Fatalf("chunk %d re-inlined the design alongside the ref: %+v", i, sp)
		}
	}
}

// TestClientDetectInlineFallbackOnRefMiss: a chunk answered 404
// design_not_found is re-sent once with its designs inlined, and the
// batch completes. The server sees exactly one ref attempt and one
// inline attempt per chunk.
func TestClientDetectInlineFallbackOnRefMiss(t *testing.T) {
	var (
		mu          sync.Mutex
		refAttempts int
		inlineSeen  []string
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req lwmapi.DetectRequest
		json.NewDecoder(r.Body).Decode(&req)
		mu.Lock()
		defer mu.Unlock()
		for _, sp := range req.Suspects {
			if sp.DesignRef != "" {
				refAttempts++
				writeAPIError(w, http.StatusNotFound, lwmapi.CodeDesignNotFound,
					"design_ref "+sp.DesignRef+": not in registry")
				return
			}
			inlineSeen = append(inlineSeen, sp.Design)
		}
		out := lwmapi.DetectResponse{Results: make([][]DetectOutcome, len(req.Suspects))}
		for i := range req.Suspects {
			out.Results[i] = []DetectOutcome{{Found: true, Total: 1, Satisfied: 1}}
			out.Detected++
		}
		json.NewEncoder(w).Encode(out)
	}))
	defer ts.Close()
	c := newTestClient(t, fastConfig(ts.URL))

	ref := strings.Repeat("cd", 32)
	res, err := c.DetectByRef(context.Background(), DetectRequest{
		Suspects: []Suspect{
			{DesignRef: ref, Design: "node a in\n", Schedule: "s0"},
			{DesignRef: ref, Design: "node a in\n", Schedule: "s1"},
		},
		Records:   make([]Record, 1),
		ChunkSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() || res.Detected != 2 {
		t.Fatalf("fallback did not complete the batch: %+v", res)
	}
	mu.Lock()
	defer mu.Unlock()
	if refAttempts != 2 || len(inlineSeen) != 2 {
		t.Fatalf("ref attempts %d, inline suspects %v; want 2 and 2", refAttempts, inlineSeen)
	}
}

// TestClientDetectRefOnlyMissIsChunkError: with no inline text to fall
// back to, a ref miss is that chunk's definitive error, matching
// ErrDesignNotFound.
func TestClientDetectRefOnlyMissIsChunkError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeAPIError(w, http.StatusNotFound, lwmapi.CodeDesignNotFound, "design_ref: not in registry")
	}))
	defer ts.Close()
	c := newTestClient(t, fastConfig(ts.URL))

	res, err := c.DetectByRef(context.Background(), DetectRequest{
		Suspects: []Suspect{{DesignRef: strings.Repeat("ef", 32), Schedule: "s0"}},
		Records:  make([]Record, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete() || len(res.Failed) != 1 {
		t.Fatalf("result %+v", res)
	}
	if !errors.Is(res.Failed[0].Err, ErrDesignNotFound) {
		t.Fatalf("chunk error %v does not match ErrDesignNotFound", res.Failed[0].Err)
	}

	// And DetectByRef insists on references up front.
	if _, err := c.DetectByRef(context.Background(), DetectRequest{
		Suspects: []Suspect{{Design: "node a in\n"}}, Records: make([]Record, 1),
	}); err == nil || !strings.Contains(err.Error(), "no DesignRef") {
		t.Fatalf("ref-less suspect accepted: %v", err)
	}
}

// TestClientPutGetDesign exercises the registry methods' paths, methods,
// and payloads.
func TestClientPutGetDesign(t *testing.T) {
	ref := strings.Repeat("12", 32)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPut && r.URL.Path == "/v1/designs":
			var req PutDesignRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Design == "" {
				writeAPIError(w, http.StatusBadRequest, lwmapi.CodeBadRequest, "design required")
				return
			}
			json.NewEncoder(w).Encode(PutDesignResponse{Ref: ref, Created: true, Bytes: len(req.Design), Nodes: 1})
		case r.Method == http.MethodGet && r.URL.Path == "/v1/designs/"+ref:
			json.NewEncoder(w).Encode(GetDesignResponse{Ref: ref, Design: "node a in\n"})
		case r.Method == http.MethodGet:
			writeAPIError(w, http.StatusNotFound, lwmapi.CodeDesignNotFound, "not in registry")
		default:
			writeAPIError(w, http.StatusMethodNotAllowed, lwmapi.CodeMethodNotAllowed, "PUT, GET only")
		}
	}))
	defer ts.Close()
	c := newTestClient(t, fastConfig(ts.URL))

	put, err := c.PutDesign(context.Background(), "node a in\n")
	if err != nil {
		t.Fatal(err)
	}
	if put.Ref != ref || !put.Created || put.Bytes != len("node a in\n") {
		t.Fatalf("put response %+v", put)
	}
	got, err := c.GetDesign(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}
	if got.Design != "node a in\n" {
		t.Fatalf("get response %+v", got)
	}
	if _, err := c.GetDesign(context.Background(), strings.Repeat("00", 32)); !errors.Is(err, ErrDesignNotFound) {
		t.Fatalf("ghost ref error %v", err)
	}
}

// TestClientErrorSentinels: every typed envelope code unwraps to its
// sentinel, and a pre-code (PR-4) envelope still maps via the status.
func TestClientErrorSentinels(t *testing.T) {
	cases := []struct {
		name   string
		status int
		body   string
		want   error
	}{
		{"typed bad_request", 400, `{"code":"bad_request","message":"m","error":"m","status":400}`, ErrBadRequest},
		{"typed design_not_found", 404, `{"code":"design_not_found","message":"m","error":"m","status":404}`, ErrDesignNotFound},
		{"typed method_not_allowed", 405, `{"code":"method_not_allowed","message":"m","error":"m","status":405}`, ErrMethodNotAllowed},
		{"typed queue_full", 429, `{"code":"queue_full","message":"m","retryable":true,"error":"m","status":429}`, ErrQueueFull},
		{"typed draining", 503, `{"code":"draining","message":"m","retryable":true,"error":"m","status":503}`, ErrDraining},
		{"typed timeout", 504, `{"code":"timeout","message":"m","retryable":true,"error":"m","status":504}`, ErrTimeout},
		{"typed internal", 500, `{"code":"internal","message":"m","retryable":true,"error":"m","status":500}`, ErrInternal},
		{"pr4 bad request", 400, `{"error":"m","status":400}`, ErrBadRequest},
		{"pr4 queue full", 429, `{"error":"m","status":429}`, ErrQueueFull},
		{"pr4 draining", 503, `{"error":"m","status":503}`, ErrDraining},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(tc.status)
				w.Write([]byte(tc.body))
			}))
			defer ts.Close()
			cfg := fastConfig(ts.URL)
			cfg.MaxAttempts = 1 // 429/5xx would otherwise retry
			c := newTestClient(t, cfg)
			_, err := c.Verify(context.Background(), VerifyRequest{Design: "d", Schedule: "s", Signature: "sig"})
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v does not match %v", err, tc.want)
			}
			var he *HTTPError
			if !errors.As(err, &he) || he.Status != tc.status {
				t.Fatalf("HTTPError not surfaced: %v", err)
			}
		})
	}
}
