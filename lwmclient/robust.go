package lwmclient

import (
	"context"
	"encoding/json"
	"fmt"

	"localwm/lwmapi"
)

// Robustness campaigns: ask the daemon to re-mark a design and run a
// seeded attack battery against it (POST /v1/robustness). Small
// campaigns answer the report inline; large (or Async) ones are queued
// and answer the job status instead — WaitCampaign collects the report
// either way from the job ID.

// AttackSpec is one attack family's intensity ladder within a battery.
type AttackSpec = lwmapi.AttackSpec

// BatterySpec is a whole campaign spec: attacks, trials, and the
// Convincing threshold. Zero values take the service defaults.
type BatterySpec = lwmapi.BatterySpec

// RobustnessRequest runs an attack campaign against a marked design.
type RobustnessRequest = lwmapi.RobustnessRequest

// RobustnessResponse carries exactly one of the finished report or the
// queued job's status.
type RobustnessResponse = lwmapi.RobustnessResponse

// RobustnessReport is a finished campaign's structured results.
type RobustnessReport = lwmapi.RobustnessReport

// RunCampaign submits a robustness campaign. The response carries the
// finished report when the daemon ran the campaign synchronously, or the
// queued job's status when it was dispatched to the job queue (campaign
// too large, or req.Async set) — pass the job's ID to WaitCampaign to
// collect the report.
func (c *Client) RunCampaign(ctx context.Context, req RobustnessRequest) (*RobustnessResponse, error) {
	var out RobustnessResponse
	if err := c.call(ctx, "/v1/robustness", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitCampaign blocks until a queued campaign job finishes and returns
// its report. The stored job result is byte-identical to the synchronous
// endpoint's response envelope, so the report decodes with the same wire
// type either way.
func (c *Client) WaitCampaign(ctx context.Context, jobID string) (*RobustnessReport, error) {
	raw, err := c.WaitJobResult(ctx, jobID)
	if err != nil {
		return nil, err
	}
	var out RobustnessResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("lwmclient: decoding campaign %s result: %w", jobID, err)
	}
	if out.Report == nil {
		return nil, fmt.Errorf("lwmclient: campaign %s result carries no report", jobID)
	}
	return out.Report, nil
}
