package lwmclient

import (
	"fmt"

	"localwm/lwmapi"
)

// The wire types are aliases of the shared lwmapi package — the same
// types the daemon's handlers decode, so the two sides of the contract
// cannot drift. Only the client-side orchestration types (the chunked
// DetectRequest and its partial DetectResult) live here.

// Record is the detector-facing watermark record, exactly as the lwm CLI
// writes it and the lwmd service consumes it.
type Record = lwmapi.Record

// MarkParams are the public embedding parameters shared by embed and
// verify requests; zero values take the service's defaults (n=2, τ=20,
// K=4, ε=0.25, budget = critical path + 10%).
type MarkParams = lwmapi.MarkParams

// EmbedRequest asks the service to embed scheduling watermarks. The
// design travels inline (Design, cdfg text) or as a registry reference
// (DesignRef, from PutDesign).
type EmbedRequest = lwmapi.EmbedRequest

// EmbedResponse is the service's embed answer.
type EmbedResponse = lwmapi.EmbedResponse

// Suspect pairs a suspect design with its schedule for batch detection.
// The design travels inline (Design) or by registry reference
// (DesignRef); when both are set the service resolves the reference and
// the client uses the inline text only as its ref-miss fallback.
type Suspect = lwmapi.Suspect

// DetectOutcome is one suspect×record detection verdict.
type DetectOutcome = lwmapi.DetectOutcome

// VerifyRequest asks the service to adjudicate an ownership claim from
// the claimed signature alone.
type VerifyRequest = lwmapi.VerifyRequest

// VerifyResponse is the service's verification verdict.
type VerifyResponse = lwmapi.VerifyResponse

// PutDesignRequest registers a design with the service's registry.
type PutDesignRequest = lwmapi.PutDesignRequest

// PutDesignResponse is the registry's answer to a put.
type PutDesignResponse = lwmapi.PutDesignResponse

// GetDesignResponse returns a registered design's canonical text.
type GetDesignResponse = lwmapi.GetDesignResponse

// DetectRequest is a batch detection: every record scanned in every
// suspect. The client splits suspects into chunks of ChunkSize (default
// Config.ChunkSize) and retries each chunk independently, so one failed
// chunk cannot lose the batch.
type DetectRequest struct {
	Suspects []Suspect
	Records  []Record
	// Family selects the watermark family; empty means the scheduling
	// family. Every chunk carries it.
	Family string
	// Workers is the per-request engine parallelism (0: server default).
	Workers int
	// ChunkSize overrides Config.ChunkSize for this call when positive.
	ChunkSize int
}

// ListFamiliesResponse is the family-discovery answer (GET /v1/families).
type ListFamiliesResponse = lwmapi.ListFamiliesResponse

// FamilyInfo describes one served watermark family.
type FamilyInfo = lwmapi.FamilyInfo

// ChunkError records one chunk of suspects whose request exhausted its
// attempts; the suspect rows in [Start, End) have no results.
type ChunkError struct {
	Start, End int
	Err        error
}

func (e ChunkError) Error() string {
	return fmt.Sprintf("suspects [%d,%d): %v", e.Start, e.End, e.Err)
}

// DetectResult is a batch detection outcome, possibly partial: Results
// is indexed like the request's suspects, with nil rows for suspects
// whose chunk failed (listed in Failed). Partial results are the point —
// the paper's watermarks are locally detectable, so every chunk that
// survived transport is independently meaningful.
type DetectResult struct {
	// Results[i][j] is record j scanned in suspect i; nil row when
	// suspect i's chunk failed.
	Results  [][]DetectOutcome
	Detected int // total found verdicts across delivered rows
	Failed   []ChunkError
}

// Complete reports whether every chunk was delivered.
func (r *DetectResult) Complete() bool { return len(r.Failed) == 0 }
