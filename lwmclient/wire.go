package lwmclient

import (
	"fmt"

	"localwm/internal/schedwm"
)

// Record is the detector-facing watermark record, exactly as the lwm CLI
// writes it and the lwmd service consumes it.
type Record = schedwm.Record

// MarkParams are the public embedding parameters shared by embed and
// verify requests; zero values take the service's defaults (n=2, τ=20,
// K=4, ε=0.25, budget = critical path + 10%).
type MarkParams struct {
	N       int     `json:"n"`
	Tau     int     `json:"tau"`
	K       int     `json:"k"`
	Epsilon float64 `json:"epsilon"`
	Budget  int     `json:"budget"`
	Workers int     `json:"workers"`
}

// EmbedRequest asks the service to embed scheduling watermarks. Design
// travels in the cdfg text format.
type EmbedRequest struct {
	Design    string `json:"design"`
	Signature string `json:"signature"`
	MarkParams
}

// EmbedResponse is the service's embed answer.
type EmbedResponse struct {
	MarkedDesign  string   `json:"marked_design"`
	Watermarks    int      `json:"watermarks"`
	TemporalEdges int      `json:"temporal_edges"`
	Records       []Record `json:"records"`
}

// Suspect pairs a suspect design (cdfg text) with its schedule (lwm
// schedule text) for batch detection.
type Suspect struct {
	Design   string `json:"design"`
	Schedule string `json:"schedule"`
}

// DetectOutcome is one suspect×record detection verdict, mirroring the
// service wire format field for field.
type DetectOutcome struct {
	Found      bool   `json:"found"`
	Root       string `json:"root,omitempty"`
	Satisfied  int    `json:"satisfied"`
	Total      int    `json:"total"`
	Pc         string `json:"pc"`
	RootsTried int    `json:"roots_tried"`
	Error      string `json:"error,omitempty"`
}

// DetectRequest is a batch detection: every record scanned in every
// suspect. The client splits suspects into chunks of ChunkSize (default
// Config.ChunkSize) and retries each chunk independently, so one failed
// chunk cannot lose the batch.
type DetectRequest struct {
	Suspects []Suspect
	Records  []Record
	// Workers is the per-request engine parallelism (0: server default).
	Workers int
	// ChunkSize overrides Config.ChunkSize for this call when positive.
	ChunkSize int
}

// ChunkError records one chunk of suspects whose request exhausted its
// attempts; the suspect rows in [Start, End) have no results.
type ChunkError struct {
	Start, End int
	Err        error
}

func (e ChunkError) Error() string {
	return fmt.Sprintf("suspects [%d,%d): %v", e.Start, e.End, e.Err)
}

// DetectResult is a batch detection outcome, possibly partial: Results
// is indexed like the request's suspects, with nil rows for suspects
// whose chunk failed (listed in Failed). Partial results are the point —
// the paper's watermarks are locally detectable, so every chunk that
// survived transport is independently meaningful.
type DetectResult struct {
	// Results[i][j] is record j scanned in suspect i; nil row when
	// suspect i's chunk failed.
	Results  [][]DetectOutcome
	Detected int // total found verdicts across delivered rows
	Failed   []ChunkError
}

// Complete reports whether every chunk was delivered.
func (r *DetectResult) Complete() bool { return len(r.Failed) == 0 }

// VerifyRequest asks the service to adjudicate an ownership claim from
// the claimed signature alone.
type VerifyRequest struct {
	Design    string `json:"design"`
	Schedule  string `json:"schedule"`
	Signature string `json:"signature"`
	MarkParams
}

// VerifyResponse is the service's verification verdict.
type VerifyResponse struct {
	Verified   bool   `json:"verified"`
	Satisfied  int    `json:"satisfied"`
	Total      int    `json:"total"`
	Pc         string `json:"pc"`
	RootsTried int    `json:"roots_tried"`
}

// detectWire is the on-the-wire detect request (one chunk).
type detectWire struct {
	Suspects []Suspect `json:"suspects"`
	Records  []Record  `json:"records"`
	Workers  int       `json:"workers"`
}

// detectResponseWire is the on-the-wire detect response (one chunk).
type detectResponseWire struct {
	Results  [][]DetectOutcome `json:"results"`
	Detected int               `json:"detected"`
}

// errorBody is the service's JSON error envelope.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}
