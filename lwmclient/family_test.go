package lwmclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"localwm/lwmapi"
)

// TestClientListFamilies: the discovery call hits GET /v1/families and
// returns the daemon's listing.
func TestClientListFamilies(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet || r.URL.Path != "/v1/families" {
			t.Errorf("unexpected request: %s %s", r.Method, r.URL.Path)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(lwmapi.ListFamiliesResponse{
			Default: lwmapi.FamilySched,
			Families: []lwmapi.FamilyInfo{
				{Name: "gcolor"}, {Name: "sched"}, {Name: "tmwm"},
			},
		})
	}))
	defer ts.Close()

	c := newTestClient(t, fastConfig(ts.URL))
	resp, err := c.ListFamilies(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Default != lwmapi.FamilySched || len(resp.Families) != 3 {
		t.Fatalf("listing: %+v", resp)
	}
}

// TestClientFamilyErrorSentinels: the family_unknown and
// family_unsupported answer codes map onto their errors.Is sentinels, and
// neither is retried (400 is a definite answer).
func TestClientFamilyErrorSentinels(t *testing.T) {
	for _, tc := range []struct {
		code string
		want error
	}{
		{lwmapi.CodeFamilyUnknown, ErrFamilyUnknown},
		{lwmapi.CodeFamilyUnsupported, ErrFamilyUnsupported},
	} {
		hits := 0
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits++
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(lwmapi.Error{
				Code: tc.code, Message: "nope", LegacyMessage: "nope", Status: http.StatusBadRequest,
			})
		}))
		c := newTestClient(t, fastConfig(ts.URL))
		_, err := c.Embed(context.Background(), EmbedRequest{
			Family: "whatever", Design: "node a in\n", Signature: "alice",
		})
		ts.Close()
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v does not match sentinel %v", tc.code, err, tc.want)
		}
		if hits != 1 {
			t.Errorf("%s: %d attempts for a definite 400", tc.code, hits)
		}
	}
}

// TestClientDetectChunksCarryFamily: every chunk of a split detect
// request repeats the family field — a family-dispatched batch must not
// fall back to the scheduling family mid-request.
func TestClientDetectChunksCarryFamily(t *testing.T) {
	var families []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req lwmapi.DetectRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Error(err)
		}
		families = append(families, req.Family)
		outs := make([][]lwmapi.DetectOutcome, len(req.Suspects))
		for i := range outs {
			outs[i] = []lwmapi.DetectOutcome{{Found: true, Total: 1, Satisfied: 1}}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(lwmapi.DetectResponse{Results: outs, Detected: 1})
	}))
	defer ts.Close()

	cfg := fastConfig(ts.URL)
	cfg.ChunkSize = 1
	c := newTestClient(t, cfg)
	suspects := []Suspect{
		{Design: "gcolor v1\nn 2\ne 0 1\n", Schedule: "coloring v1\nc 0 0\nc 1 1\n"},
		{Design: "gcolor v1\nn 2\ne 0 1\n", Schedule: "coloring v1\nc 0 0\nc 1 1\n"},
	}
	res, err := c.Detect(context.Background(), DetectRequest{
		Family:   "gcolor",
		Suspects: suspects,
		Records:  []lwmapi.Record{{Signature: []byte("x")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() || len(res.Results) != 2 {
		t.Fatalf("results: %+v", res)
	}
	if len(families) != 2 {
		t.Fatalf("%d chunks, want 2", len(families))
	}
	for i, fam := range families {
		if fam != "gcolor" {
			t.Errorf("chunk %d carried family %q", i, fam)
		}
	}
}
