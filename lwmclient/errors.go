package lwmclient

import (
	"errors"
	"net/http"

	"localwm/lwmapi"
)

// Sentinel errors, one per lwmapi error code the service answers with.
// Match with errors.Is — every *HTTPError unwraps to the sentinel of its
// envelope code, so callers switch on the failure kind without string
// matching:
//
//	if errors.Is(err, lwmclient.ErrDesignNotFound) { re-put and retry }
//
// Against a pre-registry daemon (no "code" field in the envelope), the
// mapping falls back to the HTTP status, which answers the same way for
// every code the old daemon could produce.
var (
	// ErrBadRequest: the payload was malformed or semantically invalid
	// (400, bad_request).
	ErrBadRequest = errors.New("lwmclient: bad request")
	// ErrDesignNotFound: a design_ref did not resolve in the service's
	// registry — never put, or evicted (404, design_not_found). Re-put
	// the design or fall back to inline.
	ErrDesignNotFound = errors.New("lwmclient: design not found")
	// ErrMethodNotAllowed: wrong HTTP method (405, method_not_allowed).
	ErrMethodNotAllowed = errors.New("lwmclient: method not allowed")
	// ErrQueueFull: the endpoint's admission queue was at capacity (429,
	// queue_full). Retryable after the Retry-After hint.
	ErrQueueFull = errors.New("lwmclient: queue full")
	// ErrDraining: the daemon is shutting down gracefully (503,
	// draining). Retryable against its replacement.
	ErrDraining = errors.New("lwmclient: draining")
	// ErrTimeout: the request deadline expired while queued or running on
	// the service (504, timeout).
	ErrTimeout = errors.New("lwmclient: server-side timeout")
	// ErrInternal: the handler failed or panicked (500, internal).
	ErrInternal = errors.New("lwmclient: internal server error")
	// ErrJobNotFound: a job ID did not resolve — never submitted, or
	// evicted by terminal-job retention (404, job_not_found).
	ErrJobNotFound = errors.New("lwmclient: job not found")
	// ErrJobNotReady: the job's result was requested before the job
	// reached done (409, job_not_ready). Retryable after the Retry-After
	// hint; WaitJobResult does this automatically.
	ErrJobNotReady = errors.New("lwmclient: job not ready")
	// ErrJobFailed: the job terminated in the failed state; the error
	// message carries the job's final failure (410, job_failed).
	ErrJobFailed = errors.New("lwmclient: job failed")
	// ErrTenantUnauthorized: the daemon runs a tenant control plane and
	// the request carried no API key, or one it does not recognize (401,
	// tenant_unauthorized). Not retryable — fix the key (WithAPIKey).
	ErrTenantUnauthorized = errors.New("lwmclient: tenant unauthorized")
	// ErrTenantRateLimited: this tenant's token bucket is exhausted (429,
	// tenant_rate_limited). Retryable after the Retry-After hint; unlike
	// ErrQueueFull it says nothing about service health, so the client
	// backs off without counting it against the circuit breaker.
	ErrTenantRateLimited = errors.New("lwmclient: tenant rate limited")
	// ErrTenantQuotaExceeded: a design put would exceed this tenant's
	// store quota (413, tenant_quota_exceeded). Not retryable until the
	// tenant deletes designs or its quota is raised.
	ErrTenantQuotaExceeded = errors.New("lwmclient: tenant quota exceeded")
	// ErrTraceNotFound: a trace ID did not resolve in the daemon's
	// flight recorder — sampled out, evicted by the ring bound, or the
	// recorder is disabled (404, trace_not_found). Not retryable.
	ErrTraceNotFound = errors.New("lwmclient: trace not found")
	// ErrProfileNotFound: a pprof snapshot name did not resolve — never
	// captured, pruned by retention, or the profiler is disabled (404,
	// profile_not_found). Not retryable.
	ErrProfileNotFound = errors.New("lwmclient: profile not found")
	// ErrFamilyUnknown: the request named a watermark family the daemon
	// does not serve (400, family_unknown). Not retryable — list the
	// served families with ListFamilies.
	ErrFamilyUnknown = errors.New("lwmclient: family unknown")
	// ErrFamilyUnsupported: the named family exists but does not support
	// the requested operation — e.g. a robustness campaign on a family
	// without attack batteries (400, family_unsupported). Not retryable.
	ErrFamilyUnsupported = errors.New("lwmclient: family unsupported")
)

// sentinelFor maps an envelope code (preferred) or an HTTP status (the
// pre-code fallback) to its sentinel, or nil for codes/statuses without
// one.
func sentinelFor(code string, status int) error {
	switch code {
	case lwmapi.CodeBadRequest:
		return ErrBadRequest
	case lwmapi.CodeDesignNotFound:
		return ErrDesignNotFound
	case lwmapi.CodeMethodNotAllowed:
		return ErrMethodNotAllowed
	case lwmapi.CodeQueueFull:
		return ErrQueueFull
	case lwmapi.CodeDraining:
		return ErrDraining
	case lwmapi.CodeTimeout:
		return ErrTimeout
	case lwmapi.CodeInternal:
		return ErrInternal
	case lwmapi.CodeJobNotFound:
		return ErrJobNotFound
	case lwmapi.CodeJobNotReady:
		return ErrJobNotReady
	case lwmapi.CodeJobFailed:
		return ErrJobFailed
	case lwmapi.CodeTenantUnauthorized:
		return ErrTenantUnauthorized
	case lwmapi.CodeTenantRateLimited:
		return ErrTenantRateLimited
	case lwmapi.CodeTenantQuotaExceeded:
		return ErrTenantQuotaExceeded
	case lwmapi.CodeTraceNotFound:
		return ErrTraceNotFound
	case lwmapi.CodeProfileNotFound:
		return ErrProfileNotFound
	case lwmapi.CodeFamilyUnknown:
		return ErrFamilyUnknown
	case lwmapi.CodeFamilyUnsupported:
		return ErrFamilyUnsupported
	}
	switch status {
	// 409 and 410 only ever come from the job endpoints, so the
	// status fallback is unambiguous (unlike 404, which predates jobs
	// as the design-ref miss).
	case http.StatusConflict:
		return ErrJobNotReady
	case http.StatusGone:
		return ErrJobFailed
	case http.StatusBadRequest:
		return ErrBadRequest
	case http.StatusNotFound:
		return ErrDesignNotFound
	case http.StatusMethodNotAllowed:
		return ErrMethodNotAllowed
	case http.StatusTooManyRequests:
		// Pre-tenant daemons only produce 429 for queue_full; tenant
		// rate limiting always sends its code, so it never lands here.
		return ErrQueueFull
	case http.StatusUnauthorized:
		return ErrTenantUnauthorized
	case http.StatusRequestEntityTooLarge:
		return ErrTenantQuotaExceeded
	case http.StatusServiceUnavailable:
		return ErrDraining
	case http.StatusGatewayTimeout:
		return ErrTimeout
	case http.StatusInternalServerError:
		return ErrInternal
	}
	return nil
}
