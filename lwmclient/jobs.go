package lwmclient

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"localwm/lwmapi"
)

// Async job API: submit heavy embed/detect/verify work to the daemon's
// durable job queue and collect the result later. A done job's result
// bytes are exactly the synchronous endpoint's response body, so callers
// decode them with the same types (lwmapi.EmbedResponse etc.).

// JobRequest submits one async job; exactly one payload field must be
// set, matching Kind.
type JobRequest = lwmapi.JobRequest

// JobStatus is a job's public state, as the status endpoints and the
// completion webhook report it.
type JobStatus = lwmapi.JobStatus

// SubmitJob submits one job (POST /v1/jobs) and returns its initial
// status. The kind/payload pairing is validated client-side first, so a
// malformed request never spends a network attempt. Set an
// IdempotencyKey when resubmitting after a lost response: the daemon
// answers with the original job instead of running the work twice.
func (c *Client) SubmitJob(ctx context.Context, req JobRequest) (*JobStatus, error) {
	if _, err := lwmapi.ValidJobPayload(&req); err != nil {
		return nil, fmt.Errorf("lwmclient: %w", err)
	}
	var out JobStatus
	if err := c.call(ctx, "/v1/jobs", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobStatus fetches a job's current status (GET /v1/jobs/{id}). An
// unknown ID answers an error matching ErrJobNotFound.
func (c *Client) JobStatus(ctx context.Context, id string) (*JobStatus, error) {
	var out JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobResult fetches a done job's stored response bytes, verbatim
// (GET /v1/jobs/{id}/result). A job still in flight answers an error
// matching ErrJobNotReady (carrying the server's Retry-After hint); a
// failed job one matching ErrJobFailed with the job's final error.
// WaitJobResult wraps the wait-then-fetch sequence.
func (c *Client) JobResult(ctx context.Context, id string) ([]byte, error) {
	var raw []byte
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/result", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// WaitJob blocks until the job reaches a terminal state (done or
// failed), long-polling the status endpoint (?wait=) so each round trip
// parks server-side instead of busy-polling. The caller's ctx bounds the
// whole wait. The returned status is terminal; reaching "failed" is not
// an error here — WaitJobResult is the variant that converts failure
// into one.
func (c *Client) WaitJob(ctx context.Context, id string) (*JobStatus, error) {
	const pollWait = 30 * time.Second
	since := 0
	for {
		var out JobStatus
		path := "/v1/jobs/" + url.PathEscape(id) +
			"?wait=" + pollWait.String() + "&since=" + strconv.Itoa(since)
		if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
			return nil, err
		}
		if out.Terminal {
			return &out, nil
		}
		since = out.Version
		if err := ctx.Err(); err != nil {
			return &out, err
		}
	}
}

// WaitJobResult waits for the job to finish and returns its result
// bytes (byte-identical to the synchronous endpoint's response). A job
// that terminates failed returns an error matching ErrJobFailed. The
// rare in-flight answer between the terminal status and the result fetch
// honors the server's Retry-After hint before trying again.
func (c *Client) WaitJobResult(ctx context.Context, id string) ([]byte, error) {
	st, err := c.WaitJob(ctx, id)
	if err != nil {
		return nil, err
	}
	if st.State == lwmapi.JobFailed {
		return nil, fmt.Errorf("lwmclient: job %s failed after %d attempt(s): %s: %w",
			id, st.Attempt, st.Error, ErrJobFailed)
	}
	for {
		raw, err := c.JobResult(ctx, id)
		if err == nil {
			return raw, nil
		}
		if !errors.Is(err, ErrJobNotReady) {
			return nil, err
		}
		delay := time.Second
		var he *HTTPError
		if errors.As(err, &he) && he.RetryAfter > 0 {
			delay = he.RetryAfter
		}
		if serr := sleepCtx(ctx, delay); serr != nil {
			return nil, fmt.Errorf("lwmclient: waiting for job %s result: %w", id, serr)
		}
	}
}
