// Package lwmclient is the resilient HTTP client for the lwmd
// watermarking service (cmd/lwmd): /v1/embed, /v1/detect, and /v1/verify
// with the retry discipline the daemon's backpressure contract asks of
// well-behaved callers.
//
// The resilience model:
//
//   - Deadlines. Every attempt carries Config.AttemptTimeout and the
//     whole call (all retries included) Config.CallTimeout, on top of
//     whatever deadline the caller's context already carries.
//   - Retry with capped exponential backoff and full jitter. Transport
//     failures (resets, truncated bodies, timeouts) and transient
//     statuses (429, 500, 502, 503, 504) are retried up to
//     Config.MaxAttempts; a Retry-After header on 429/503 raises the
//     backoff to at least the server's hint. Definite answers (2xx,
//     4xx) are never retried.
//   - Circuit breaker. A rolling-window breaker opens after N
//     consecutive or a fraction of windowed failures, fails fast while
//     open, and re-closes through half-open probes. While it is open the
//     retry loop waits (bounded by the call deadline) rather than
//     hammering a struggling daemon.
//   - Chunked batch detection. Detect splits suspects into chunks with
//     independent per-chunk retry and surfaces partial results — the
//     systems analogue of the paper's locally detectable watermarks,
//     where losing one piece never invalidates the rest.
//
// All results are byte-identical to the sequential engine path: the
// service guarantees determinism for any worker count, and the client
// adds transport resilience without touching payloads.
package lwmclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"localwm/internal/obs"
	"localwm/lwmapi"
)

// Config parameterizes a Client. Only BaseURL is required; every zero
// field takes the documented default.
type Config struct {
	// BaseURL locates the service, e.g. "http://localhost:8077" (a bare
	// host:port gets "http://" prepended).
	BaseURL string
	// APIKey authenticates every request to a daemon running with a
	// tenants file, sent on the X-Lwm-Api-Key header. Empty sends no key
	// — the anonymous path, which a keyless daemon (and one started with
	// -allow-anonymous) accepts unchanged.
	APIKey string
	// HTTPClient is the underlying transport. Default: a plain
	// &http.Client{} (per-attempt deadlines come from AttemptTimeout).
	HTTPClient *http.Client
	// MaxAttempts caps HTTP attempts per call — per chunk for batch
	// detection. Default 4.
	MaxAttempts int
	// BaseBackoff and MaxBackoff bound the exponential backoff between
	// retries: the k-th retry waits a uniformly jittered duration in
	// (0, min(MaxBackoff, BaseBackoff·2^(k-1))], raised to the server's
	// Retry-After hint when one is present. Defaults 50ms and 2s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// AttemptTimeout is the per-attempt deadline. Default 15s.
	AttemptTimeout time.Duration
	// CallTimeout is the overall per-call deadline, retries and breaker
	// waits included. Default 2m.
	CallTimeout time.Duration
	// ChunkSize is how many suspects ride in one detect request.
	// Default 8.
	ChunkSize int
	// Breaker parameterizes the circuit breaker.
	Breaker BreakerConfig
	// Logger, when non-nil, receives one structured line per HTTP
	// attempt (msg="attempt"), per backoff sleep (msg="backoff"), and
	// per breaker transition (msg="breaker"), all carrying the call's
	// trace ID — the same ID the daemon logs, so client and server lines
	// join on trace_id. Nil (the default) logs nothing and costs
	// nothing.
	Logger *slog.Logger

	// jitter is the backoff randomness source (tests pin it).
	jitter func() float64
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 15 * time.Second
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 2 * time.Minute
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 8
	}
	if c.jitter == nil {
		c.jitter = rand.Float64
	}
	return c
}

// HTTPError is a non-2xx answer from the service.
type HTTPError struct {
	Status int
	// Code is the lwmapi error code from the typed envelope, empty when
	// the server predates it (or the body wasn't an envelope).
	Code string
	Msg  string
	// RetryAfter is the server's backoff hint, when it sent one.
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("lwmclient: server answered %d: %s", e.Status, e.Msg)
}

// Unwrap maps the error onto its sentinel (ErrDesignNotFound,
// ErrQueueFull, ...) so errors.Is works through every wrapping layer.
// The envelope code decides; status is the fallback for pre-code
// servers. Errors without a sentinel unwrap to nil.
func (e *HTTPError) Unwrap() error { return sentinelFor(e.Code, e.Status) }

// Retryable reports whether the status is transient: worth retrying.
// Deliberately status-based, like the daemon's lwmapi.RetryableStatus —
// the typed envelope adds structure, not new retry semantics.
func (e *HTTPError) Retryable() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// transportError marks a failure below HTTP: connection refused/reset,
// truncated body, attempt timeout. Always retryable.
type transportError struct{ err error }

func (e *transportError) Error() string { return "lwmclient: transport: " + e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// isTransient reports whether err is worth retrying: transport failures
// and retryable HTTP statuses. Context errors and definite service
// answers are not.
func isTransient(err error) bool {
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Retryable()
	}
	var te *transportError
	return errors.As(err, &te)
}

// Counters is a snapshot of a Client's cumulative activity.
type Counters struct {
	Attempts         uint64 // HTTP requests actually sent
	Retries          uint64 // attempts beyond each call's first
	BreakerFastFails uint64 // sends refused by an open breaker
	BreakerOpens     uint64 // closed/half-open → open transitions
	BreakerCloses    uint64 // half-open → closed transitions
}

// clientStats holds a Client's cumulative counters behind a pointer so
// WithAPIKey-derived clients share them (atomics are not copyable).
type clientStats struct {
	attempts  atomic.Uint64
	retries   atomic.Uint64
	fastFails atomic.Uint64
}

// Client is a resilient lwmd client. Safe for concurrent use.
type Client struct {
	cfg   Config
	base  string
	br    *breaker
	reg   *obs.Registry
	stats *clientStats
}

// New builds a Client for the service at cfg.BaseURL.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("lwmclient: Config.BaseURL required")
	}
	cfg = cfg.withDefaults()
	base := strings.TrimRight(cfg.BaseURL, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{cfg: cfg, base: base, br: newBreaker(cfg.Breaker), stats: &clientStats{}}
	c.reg = c.buildRegistry()
	return c, nil
}

// WithAPIKey returns a client that authenticates with the given tenant
// key while sharing this client's transport config, circuit breaker,
// and counters: one process calling the same daemon on behalf of
// several tenants keeps one view of the daemon's health. An empty key
// returns an anonymous-path client.
func (c *Client) WithAPIKey(key string) *Client {
	dup := &Client{cfg: c.cfg, base: c.base, br: c.br, stats: c.stats}
	dup.cfg.APIKey = key
	dup.reg = dup.buildRegistry()
	return dup
}

// buildRegistry exposes the client's counters as lwmclient_* Prometheus
// series for WritePrometheus.
func (c *Client) buildRegistry() *obs.Registry {
	r := obs.NewRegistry()
	for _, ec := range []struct {
		name, help string
		load       func() uint64
	}{
		{"lwmclient_attempts_total", "HTTP requests actually sent.",
			func() uint64 { return c.stats.attempts.Load() }},
		{"lwmclient_retries_total", "Attempts beyond each call's first.",
			func() uint64 { return c.stats.retries.Load() }},
		{"lwmclient_breaker_fast_fails_total", "Sends refused by an open breaker.",
			func() uint64 { return c.stats.fastFails.Load() }},
		{"lwmclient_breaker_opens_total", "Breaker closed/half-open to open transitions.",
			func() uint64 { opens, _ := c.br.stats(); return opens }},
		{"lwmclient_breaker_closes_total", "Breaker half-open to closed transitions.",
			func() uint64 { _, closes := c.br.stats(); return closes }},
	} {
		load := ec.load
		r.CounterFunc(ec.name, ec.help, nil, func() float64 { return float64(load()) })
	}
	r.GaugeFunc("lwmclient_breaker_open",
		"1 while the circuit breaker refuses sends, else 0.", nil,
		func() float64 {
			if c.br.State() == "open" {
				return 1
			}
			return 0
		})
	return r
}

// WritePrometheus writes the client's retry and breaker counters in the
// Prometheus text exposition format, for embedding applications that
// expose their own /metrics page.
func (c *Client) WritePrometheus(w io.Writer) error {
	return c.reg.WritePrometheus(w)
}

// Counters returns the client's cumulative attempt and breaker counters.
func (c *Client) Counters() Counters {
	opens, closes := c.br.stats()
	return Counters{
		Attempts:         c.stats.attempts.Load(),
		Retries:          c.stats.retries.Load(),
		BreakerFastFails: c.stats.fastFails.Load(),
		BreakerOpens:     opens,
		BreakerCloses:    closes,
	}
}

// BreakerState reports the circuit breaker state: "closed", "open", or
// "half-open".
func (c *Client) BreakerState() string { return c.br.State() }

// Embed embeds scheduling watermarks on the service.
func (c *Client) Embed(ctx context.Context, req EmbedRequest) (*EmbedResponse, error) {
	var out EmbedResponse
	if err := c.call(ctx, "/v1/embed", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Verify adjudicates an ownership claim on the service.
func (c *Client) Verify(ctx context.Context, req VerifyRequest) (*VerifyResponse, error) {
	var out VerifyResponse
	if err := c.call(ctx, "/v1/verify", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PutDesign registers a design with the service's content-addressed
// registry and returns its reference, for use as the DesignRef of
// subsequent embed/detect/verify requests. Putting the same design
// twice is an idempotent refresh (Created false).
func (c *Client) PutDesign(ctx context.Context, design string) (*PutDesignResponse, error) {
	return c.PutDesignFamily(ctx, "", design)
}

// PutDesignFamily registers a design under the named watermark family
// (empty: the scheduling family). References are family-salted, so the
// same text put under two families yields two distinct refs, each
// resolvable only by requests of its own family.
func (c *Client) PutDesignFamily(ctx context.Context, family, design string) (*PutDesignResponse, error) {
	var out PutDesignResponse
	if err := c.do(ctx, http.MethodPut, "/v1/designs", PutDesignRequest{Family: family, Design: design}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ListFamilies enumerates the watermark families the service dispatches
// on, with each family's default parameters and capability flags. A
// pre-family daemon answers 404; callers can treat that as "scheduling
// only".
func (c *Client) ListFamilies(ctx context.Context) (*ListFamiliesResponse, error) {
	var out ListFamiliesResponse
	if err := c.do(ctx, http.MethodGet, "/v1/families", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// GetDesign fetches a registered design's canonical text by reference.
// A reference that doesn't resolve answers an error matching
// ErrDesignNotFound.
func (c *Client) GetDesign(ctx context.Context, ref string) (*GetDesignResponse, error) {
	var out GetDesignResponse
	if err := c.do(ctx, http.MethodGet, "/v1/designs/"+ref, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Detect batch-scans suspects×records on the service, chunking suspects
// so each chunk retries independently. It returns a (possibly partial)
// result whenever at least the chunking itself was well-formed; inspect
// DetectResult.Failed (or Complete) for chunks that exhausted their
// attempts. Rows that did arrive are byte-identical to the sequential
// engine path regardless of chunking, retries, or injected faults.
//
// Suspects carrying a DesignRef send the reference in every chunk they
// land in — the reference rides the chunk, never a one-shot first
// request — and their inline Design text (when present) is held back as
// the ref-miss fallback: a chunk the service answers 404
// design_not_found is re-sent once with those suspects inlined. A
// ref-only chunk (no inline text to fall back to) surfaces the 404 as
// its ChunkError.
func (c *Client) Detect(ctx context.Context, req DetectRequest) (*DetectResult, error) {
	if len(req.Suspects) == 0 {
		return nil, errors.New("lwmclient: detect: at least one suspect required")
	}
	if len(req.Records) == 0 {
		return nil, errors.New("lwmclient: detect: at least one record required")
	}
	chunk := req.ChunkSize
	if chunk <= 0 {
		chunk = c.cfg.ChunkSize
	}
	res := &DetectResult{Results: make([][]DetectOutcome, len(req.Suspects))}
	for start := 0; start < len(req.Suspects); start += chunk {
		end := start + chunk
		if end > len(req.Suspects) {
			end = len(req.Suspects)
		}
		out, err := c.detectChunk(ctx, req.Family, req.Suspects[start:end], req.Records, req.Workers)
		if err != nil {
			res.Failed = append(res.Failed, ChunkError{Start: start, End: end, Err: err})
			continue
		}
		if len(out.Results) != end-start {
			res.Failed = append(res.Failed, ChunkError{Start: start, End: end,
				Err: fmt.Errorf("lwmclient: server returned %d rows for %d suspects", len(out.Results), end-start)})
			continue
		}
		copy(res.Results[start:end], out.Results)
		res.Detected += out.Detected
	}
	return res, nil
}

// DetectByRef is Detect for registry-backed batches: every suspect must
// name its design by DesignRef (Design, when also set, is only the
// ref-miss fallback). Use after PutDesign to stop re-sending and
// re-parsing the same design text on every scan.
func (c *Client) DetectByRef(ctx context.Context, req DetectRequest) (*DetectResult, error) {
	for i, sp := range req.Suspects {
		if sp.DesignRef == "" {
			return nil, fmt.Errorf("lwmclient: detect by ref: suspect %d has no DesignRef", i)
		}
	}
	return c.Detect(ctx, req)
}

// detectChunk sends one chunk, preferring references and falling back
// to inline designs exactly once when the service misses a ref.
func (c *Client) detectChunk(ctx context.Context, family string, suspects []Suspect, records []Record, workers int) (*lwmapi.DetectResponse, error) {
	// Ref-carrying suspects travel as the bare reference: the inline
	// text (if any) stays client-side as the fallback payload.
	wireSuspects := make([]lwmapi.Suspect, len(suspects))
	canFallBack := false
	usedRef := false
	for i, sp := range suspects {
		wireSuspects[i] = sp
		if sp.DesignRef != "" {
			usedRef = true
			wireSuspects[i].Design = ""
			if sp.Design != "" {
				canFallBack = true
			}
		}
	}
	var out lwmapi.DetectResponse
	err := c.call(ctx, "/v1/detect", lwmapi.DetectRequest{
		Suspects: wireSuspects, Records: records, Family: family, Workers: workers,
	}, &out)
	if err == nil || !usedRef || !errors.Is(err, ErrDesignNotFound) {
		return &out, err
	}
	if !canFallBack {
		return nil, err
	}
	// Ref miss: re-send this chunk with every ref-suspect inlined. Any
	// suspect without inline text keeps its ref and will 404 again —
	// that second answer is definitive.
	for i, sp := range suspects {
		if sp.DesignRef != "" && sp.Design != "" {
			wireSuspects[i] = Suspect{Design: sp.Design, Schedule: sp.Schedule}
		}
	}
	out = lwmapi.DetectResponse{}
	if ferr := c.call(ctx, "/v1/detect", lwmapi.DetectRequest{
		Suspects: wireSuspects, Records: records, Family: family, Workers: workers,
	}, &out); ferr != nil {
		return nil, fmt.Errorf("inline fallback after ref miss: %w", ferr)
	}
	return &out, nil
}

// logAttrs emits one structured client log line when a logger is
// configured; trace_id and path lead every line so client logs join the
// daemon's request logs on trace_id.
func (c *Client) logAttrs(msg string, tid obs.TraceID, path string, extra ...slog.Attr) {
	if c.cfg.Logger == nil {
		return
	}
	attrs := append([]slog.Attr{
		slog.String("trace_id", string(tid)),
		slog.String("path", path),
	}, extra...)
	c.cfg.Logger.LogAttrs(context.Background(), slog.LevelInfo, msg, attrs...)
}

// call is do for the POST endpoints.
func (c *Client) call(ctx context.Context, path string, in, out any) error {
	return c.do(ctx, http.MethodPost, path, in, out)
}

// do runs one resilient request: marshal, then attempt with breaker
// gating, per-attempt deadlines, and jittered backoff until success, a
// definite (non-transient) answer, MaxAttempts, or the call deadline.
// A nil in sends no body (the GET endpoints).
//
// Every call carries a trace ID on X-Lwm-Trace-Id: the one from a trace
// attached to ctx (obs.WithTrace — the lwm CLI's -trace flag does
// this), or a fresh process-unique ID otherwise. The daemon adopts the
// ID, so one trace ID names the logical request on both sides of the
// wire, across every retry.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		body, err = json.Marshal(in)
		if err != nil {
			return fmt.Errorf("lwmclient: encoding request: %w", err)
		}
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()

	tr := obs.TraceFrom(ctx)
	var tid obs.TraceID
	if tr != nil {
		tid = tr.ID
	} else {
		tid = obs.NewTraceID()
	}
	ctx, callSpan := obs.StartSpan(ctx, "call "+path)
	defer callSpan.Finish()

	attempts := 0
	var lastErr error
	for {
		// Breaker gate. Waiting here consumes no attempt: nothing was
		// sent. The call deadline bounds the total wait.
		if wait, berr := c.br.allow(time.Now()); berr != nil {
			c.stats.fastFails.Add(1)
			if lastErr == nil {
				lastErr = berr
			}
			c.logAttrs("breaker_wait", tid, path, slog.Duration("wait", wait))
			waitStart := time.Now()
			serr := sleepCtx(ctx, wait)
			tr.Record(callSpan, "breaker.wait", waitStart, time.Since(waitStart))
			if serr != nil {
				return fmt.Errorf("lwmclient: %s: %w (last error: %v)", path, serr, lastErr)
			}
			continue
		}

		attempts++
		c.stats.attempts.Add(1)
		if attempts > 1 {
			c.stats.retries.Add(1)
		}
		var aspan *obs.Span
		if tr != nil {
			aspan = tr.StartSpan(callSpan, fmt.Sprintf("attempt %d", attempts))
		}
		attemptStart := time.Now()
		err := c.attempt(ctx, method, path, tid, body, out, aspan)
		aspan.Finish()
		transient := err != nil && isTransient(err)
		// Breaker feedback: only transient failures indict the service;
		// a definite 4xx means it is healthy and answered. A tenant
		// rate-limit 429 is transient for the retry loop (this caller
		// backs off per the daemon's Retry-After) but NOT breaker
		// pressure: the daemon throttled this tenant specifically while
		// serving everyone else fine, so treating it as a fault would
		// let one tenant's burst trip the breaker every other tenant
		// sharing this process depends on.
		callerThrottled := false
		var the *HTTPError
		if errors.As(err, &the) && the.Code == lwmapi.CodeTenantRateLimited {
			callerThrottled = true
		}
		if transition := c.br.record(!transient || callerThrottled, time.Now()); transition != "" {
			c.logAttrs("breaker", tid, path, slog.String("transition", transition))
		}
		if c.cfg.Logger != nil {
			extra := []slog.Attr{
				slog.Int("attempt", attempts),
				slog.Float64("elapsed_ms", float64(time.Since(attemptStart))/float64(time.Millisecond)),
			}
			if err != nil {
				extra = append(extra, slog.String("err", err.Error()), slog.Bool("transient", transient))
			} else {
				extra = append(extra, slog.String("result", "ok"))
			}
			c.logAttrs("attempt", tid, path, extra...)
		}
		if err == nil {
			return nil
		}
		if !transient {
			return err
		}
		lastErr = err
		if attempts >= c.cfg.MaxAttempts {
			return fmt.Errorf("lwmclient: %s failed after %d attempts: %w", path, attempts, lastErr)
		}
		delay := c.backoff(attempts)
		var he *HTTPError
		if errors.As(err, &he) && he.RetryAfter > delay {
			delay = he.RetryAfter
		}
		c.logAttrs("backoff", tid, path,
			slog.Int("attempt", attempts), slog.Duration("delay", delay))
		backoffStart := time.Now()
		serr := sleepCtx(ctx, delay)
		tr.Record(callSpan, "backoff", backoffStart, time.Since(backoffStart))
		if serr != nil {
			return fmt.Errorf("lwmclient: %s: %w (last error: %v)", path, serr, lastErr)
		}
	}
}

// attempt sends one HTTP request under the per-attempt deadline and
// decodes the answer into out. The attempt span (nil when untraced)
// picks up the HTTP status and, when the daemon reported them, the
// server-side stage timings from X-Lwm-Server-Timing.
func (c *Client) attempt(ctx context.Context, method, path string, tid obs.TraceID, body []byte, out any, aspan *obs.Span) error {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("lwmclient: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(obs.TraceHeader, string(tid))
	if c.cfg.APIKey != "" {
		req.Header.Set(lwmapi.APIKeyHeader, c.cfg.APIKey)
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err() // overall deadline/cancel: not retryable
		}
		return &transportError{err}
	}
	defer resp.Body.Close()
	if aspan != nil {
		aspan.SetAttr("status", resp.StatusCode)
		if qw, run, ok := parseServerTiming(resp.Header.Get(obs.TimingHeader)); ok {
			aspan.SetAttr("server_queue_wait", qw)
			aspan.SetAttr("server_run", run)
		}
	}
	data, rerr := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		he := &HTTPError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
		var eb lwmapi.Error
		if json.Unmarshal(data, &eb) == nil {
			he.Code = eb.Code
			switch {
			case eb.Message != "":
				he.Msg = eb.Message
			case eb.LegacyMessage != "":
				// A pre-code daemon sends only the legacy envelope.
				he.Msg = eb.LegacyMessage
			}
		}
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, perr := strconv.Atoi(s); perr == nil && secs >= 0 {
				he.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return he
	}
	if rerr != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return &transportError{fmt.Errorf("reading response: %w", rerr)}
	}
	if raw, ok := out.(*[]byte); ok {
		// Raw-body calls (a job's stored result) keep the exact response
		// bytes: the byte-identity contract would not survive a decode/
		// re-encode round trip. Validity is still checked so a chaos-
		// truncated body retries like any transport fault.
		if !json.Valid(data) {
			return &transportError{fmt.Errorf("decoding response: invalid JSON body")}
		}
		*raw = data
		return nil
	}
	if bin, ok := out.(*binaryBody); ok {
		// Binary bodies (pprof snapshots) skip the JSON validity check —
		// truncation is instead caught against Content-Length when the
		// server sent one (io.ReadAll already errors short reads there).
		*bin.buf = data
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		// A syntactically broken 200 body is a transport-level fault
		// (e.g. truncation the length checks missed), not an answer.
		return &transportError{fmt.Errorf("decoding response: %w", err)}
	}
	return nil
}

// parseServerTiming decodes the daemon's X-Lwm-Server-Timing value,
// "queue_wait_ns=<int>;run_ns=<int>".
func parseServerTiming(v string) (queueWait, run time.Duration, ok bool) {
	var qw, rn int64
	if _, err := fmt.Sscanf(v, "queue_wait_ns=%d;run_ns=%d", &qw, &rn); err != nil {
		return 0, 0, false
	}
	return time.Duration(qw), time.Duration(rn), true
}

// backoff returns the full-jitter delay before retry number `attempt`
// (1-based count of attempts already made).
func (c *Client) backoff(attempt int) time.Duration {
	ceil := c.cfg.MaxBackoff
	// BaseBackoff·2^(attempt-1), saturating at MaxBackoff.
	if shift := attempt - 1; shift < 32 {
		if d := c.cfg.BaseBackoff << shift; d > 0 && d < ceil {
			ceil = d
		}
	}
	d := time.Duration(c.cfg.jitter() * float64(ceil))
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}

// sleepCtx waits d or until ctx is done, returning ctx's error in the
// latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
