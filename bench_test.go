// Benchmark harness: one testing.B benchmark per
// paper table/figure plus ablation benches for the design choices called
// out in DESIGN.md §5. Benchmarks report domain metrics (Pc exponents,
// overhead percentages, module counts) via b.ReportMetric next to the
// usual ns/op, so `go test -bench=. -benchmem` regenerates the numbers
// EXPERIMENTS.md records.
package localwm

import (
	"fmt"
	"testing"

	"localwm/internal/attack"
	"localwm/internal/cdfg"
	"localwm/internal/designs"
	"localwm/internal/engine"
	"localwm/internal/gcolor"
	"localwm/internal/order"
	"localwm/internal/prng"
	"localwm/internal/sched"
	"localwm/internal/schedwm"
	"localwm/internal/stats"
	"localwm/internal/tmatch"
	"localwm/internal/tmwm"
	"localwm/internal/vliw"
)

var benchSig = prng.Signature("bench-signature")

// BenchmarkTable1OperationScheduling regenerates one Table I cell pair per
// application: Pc exponent and VLIW cycle overhead at 2% of nodes
// constrained.
func BenchmarkTable1OperationScheduling(b *testing.B) {
	machine := vliw.Default()
	for _, row := range designs.Table1() {
		row := row
		b.Run(row.App.Name, func(b *testing.B) {
			var pcExp, ohPct float64
			for i := 0; i < b.N; i++ {
				g := designs.Layered(row.App.Cfg)
				cp, err := g.CriticalPath()
				if err != nil {
					b.Fatal(err)
				}
				cfg := schedwm.Config{
					Tau: 24, K: 6, TauPrime: 7, Epsilon: 0.25,
					Budget: cp + cp/10 + 2, OpWeight: machine.OpWeight(),
					MaxOrderProb: 0.5,
				}
				target := len(g.Computational()) / 50 // 2%
				need := (target+cfg.K-1)/cfg.K*3 + 1
				wms, err := schedwm.EmbedMany(g, benchSig, cfg, need)
				if err != nil {
					b.Fatal(err)
				}
				pc := stats.LogProb(0)
				edges := 0
				var used []*schedwm.Watermark
				for _, wm := range wms {
					if edges >= target {
						break
					}
					p, err := schedwm.ApproxPc(g, wm, cfg.Budget)
					if err != nil {
						b.Fatal(err)
					}
					pc = pc.Mul(p)
					edges += len(wm.Edges)
					used = append(used, wm)
				}
				baseline := designs.Layered(row.App.Cfg)
				for _, wm := range used {
					if _, err := schedwm.Materialize(g, wm); err != nil {
						b.Fatal(err)
					}
				}
				g.ClearTemporalEdges()
				oh, _, _, err := machine.Overhead(baseline, g, nil)
				if err != nil {
					b.Fatal(err)
				}
				pcExp = pc.Exponent10()
				ohPct = oh * 100
			}
			b.ReportMetric(-pcExp, "pc-exp10@2%")
			b.ReportMetric(ohPct, "overhead%@2%")
		})
	}
}

// BenchmarkTable2TemplateMatching regenerates one Table II row pair per
// design: module-count overhead at the tight budget and at twice that.
func BenchmarkTable2TemplateMatching(b *testing.B) {
	lib := tmatch.StandardLibrary()
	for _, row := range designs.Table2() {
		row := row
		b.Run(row.Name, func(b *testing.B) {
			g := row.Build()
			cp, err := g.CriticalPath()
			if err != nil {
				b.Fatal(err)
			}
			tight := cp
			if row.StepsPerOp > 0 {
				tight = int(row.StepsPerOp * float64(len(g.Computational())))
			}
			base, err := tmatch.GreedyCover(g, lib, tmatch.Constraints{}, nil)
			if err != nil {
				b.Fatal(err)
			}
			z := int(row.PaperEnfPct / 100 * float64(len(base.Matchings)))
			if z < 1 {
				z = 1
			}
			var oh [2]float64
			for i := 0; i < b.N; i++ {
				for bi, budget := range [2]int{tight, 2 * tight} {
					wm, err := tmwm.Embed(g, benchSig, tmwm.Config{
						Z: z, Epsilon: 0.25, WholeGraph: true, Lib: lib, Budget: budget,
					})
					if err != nil {
						b.Fatal(err)
					}
					enforced, cons := wm.Constraints()
					marked, err := tmatch.GreedyCover(g, lib, cons, enforced)
					if err != nil {
						b.Fatal(err)
					}
					ba, err := tmatch.Allocate(g, lib, base, budget, nil)
					if err != nil {
						b.Fatal(err)
					}
					ma, err := tmatch.Allocate(g, lib, marked, budget, wm.PPO)
					if err != nil {
						b.Fatal(err)
					}
					oh[bi] = float64(ma.Modules-ba.Modules) / float64(ba.Modules) * 100
				}
			}
			b.ReportMetric(oh[0], "overhead%@B")
			b.ReportMetric(oh[1], "overhead%@2B")
		})
	}
}

// BenchmarkFig3ExactEnumeration regenerates the Fig. 3 experiment: the
// exact schedule counts of the IIR output cone with and without the
// watermark constraints.
func BenchmarkFig3ExactEnumeration(b *testing.B) {
	full := designs.FourthOrderParallelIIR()
	_, cone := designs.IIRSubtree(full)
	sub, err := full.InducedSubgraph(cone)
	if err != nil {
		b.Fatal(err)
	}
	tmpl := sub.Graph
	root := tmpl.MustNode("A7")
	cp, err := tmpl.CriticalPath()
	if err != nil {
		b.Fatal(err)
	}
	var total, withWM uint64
	for i := 0; i < b.N; i++ {
		g := tmpl.Clone()
		g.ClearTemporalEdges()
		cfg := schedwm.Config{Tau: 16, K: 5, TauPrime: 2, Epsilon: 0.15,
			Budget: cp + 1, Root: &root}
		if _, err := schedwm.Embed(g, benchSig, cfg); err != nil {
			b.Fatal(err)
		}
		withWM, total, err = schedwm.ExactPc(g, cp+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(total), "schedules(paper:166)")
	b.ReportMetric(float64(withWM), "marked(paper:15)")
}

// BenchmarkFig4MatchEnumeration regenerates the Fig. 4 experiment: the
// alternative-covering counts of the enforced matchings on the IIR.
func BenchmarkFig4MatchEnumeration(b *testing.B) {
	g := designs.FourthOrderParallelIIR()
	lib := tmatch.StandardLibrary()
	cp, err := g.CriticalPath()
	if err != nil {
		b.Fatal(err)
	}
	var pcExp float64
	for i := 0; i < b.N; i++ {
		wm, err := tmwm.Embed(g, benchSig, tmwm.Config{
			Z: 3, Epsilon: 0.2, WholeGraph: true, Lib: lib, Budget: 2 * cp})
		if err != nil {
			b.Fatal(err)
		}
		pc, err := tmwm.ApproxPc(g, lib, wm)
		if err != nil {
			b.Fatal(err)
		}
		pcExp = pc.Exponent10()
	}
	b.ReportMetric(-pcExp, "pc-exp10")
}

// BenchmarkTamperResistance regenerates the in-text attack analysis: the
// fraction of a marked schedule an attacker must disturb before the
// residual evidence weakens to Pc >= 1e-3.
func BenchmarkTamperResistance(b *testing.B) {
	var fraction float64
	for i := 0; i < b.N; i++ {
		g := designs.Layered(designs.MediaBench()[1].Cfg)
		cp, err := g.CriticalPath()
		if err != nil {
			b.Fatal(err)
		}
		cfg := schedwm.Config{Tau: 24, K: 6, TauPrime: 7, Epsilon: 0.25, Budget: cp + 8}
		wms, err := schedwm.EmbedMany(g, benchSig, cfg, 5)
		if err != nil {
			b.Fatal(err)
		}
		var edges []cdfg.Edge
		for _, wm := range wms {
			edges = append(edges, wm.Edges...)
		}
		s, err := sched.ListSchedule(g, sched.ListOpts{UseTemporal: true})
		if err != nil {
			b.Fatal(err)
		}
		s.Budget += 6
		shipped := g.Clone()
		shipped.ClearTemporalEdges()
		bs := prng.MustBitstream([]byte(fmt.Sprintf("attacker-%d", i)))
		moves, _, err := attack.MovesToErase(shipped, s, edges, 1e-3, 50000, bs)
		if err != nil {
			b.Fatal(err)
		}
		fraction = float64(moves) / float64(len(g.Computational()))
	}
	b.ReportMetric(fraction, "moves/op-to-erase")
}

// BenchmarkOrderingCriteria (ablation): how far the C2/C3 refinement must
// look to separate nodes, and whether the ordering becomes canonical, as
// the refinement depth cap varies.
func BenchmarkOrderingCriteria(b *testing.B) {
	g := designs.Layered(designs.MediaBench()[2].Cfg)
	for _, depth := range []int{1, 2, 4, 8} {
		depth := depth
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			canonical := 0.0
			for i := 0; i < b.N; i++ {
				res, err := order.Global(g, depth)
				if err != nil {
					b.Fatal(err)
				}
				if res.Canonical {
					canonical = 1
				} else {
					canonical = 0
				}
			}
			b.ReportMetric(canonical, "canonical")
		})
	}
}

// BenchmarkEpsilonSweep (ablation): the laxity margin trades proof
// strength against schedule disturbance; sweep ε and report the proof
// exponent obtained at fixed K.
func BenchmarkEpsilonSweep(b *testing.B) {
	for _, eps := range []float64{0.1, 0.25, 0.5, 0.75} {
		eps := eps
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			var pcExp float64
			embedded := 0.0
			for i := 0; i < b.N; i++ {
				g := designs.Layered(designs.MediaBench()[5].Cfg)
				cp, err := g.CriticalPath()
				if err != nil {
					b.Fatal(err)
				}
				cfg := schedwm.Config{Tau: 24, K: 6, TauPrime: 7, Epsilon: eps, Budget: cp + 8}
				wms, err := schedwm.EmbedMany(g, benchSig, cfg, 4)
				if err != nil {
					embedded = 0
					continue
				}
				embedded = float64(len(wms))
				pc := stats.LogProb(0)
				for _, wm := range wms {
					p, err := schedwm.ApproxPc(g, wm, cfg.Budget)
					if err != nil {
						b.Fatal(err)
					}
					pc = pc.Mul(p)
				}
				pcExp = pc.Exponent10()
			}
			b.ReportMetric(-pcExp, "pc-exp10")
			b.ReportMetric(embedded, "watermarks")
		})
	}
}

// BenchmarkKSweep (ablation): proof strength versus K, the per-watermark
// constraint count. The locality size is held constant so K is the only
// variable; the achieved edge count is reported because a locality
// saturates below large K targets.
func BenchmarkKSweep(b *testing.B) {
	for _, k := range []int{2, 4, 8, 16} {
		k := k
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			var pcExp, edges float64
			for i := 0; i < b.N; i++ {
				g := designs.Layered(designs.MediaBench()[5].Cfg)
				cp, err := g.CriticalPath()
				if err != nil {
					b.Fatal(err)
				}
				cfg := schedwm.Config{Tau: 48, K: k, TauPrime: 10, Epsilon: 0.25,
					Budget: cp + 8, MaxOrderProb: 0.5}
				cfg.Domain.IncludeNum, cfg.Domain.IncludeDen = 3, 4
				wm, err := schedwm.Embed(g, benchSig, cfg)
				if err != nil {
					b.Fatal(err)
				}
				pc, err := schedwm.ApproxPc(g, wm, cfg.Budget)
				if err != nil {
					b.Fatal(err)
				}
				pcExp = pc.Exponent10()
				edges = float64(len(wm.Edges))
			}
			b.ReportMetric(-pcExp, "pc-exp10")
			b.ReportMetric(edges, "edges")
		})
	}
}

// BenchmarkCoverers (ablation): greedy versus exact covering quality and
// cost on the exactly-solvable IIR.
func BenchmarkCoverers(b *testing.B) {
	g := designs.FourthOrderParallelIIR()
	lib := tmatch.StandardLibrary()
	b.Run("greedy", func(b *testing.B) {
		var size float64
		for i := 0; i < b.N; i++ {
			cov, err := tmatch.GreedyCover(g, lib, tmatch.Constraints{}, nil)
			if err != nil {
				b.Fatal(err)
			}
			size = float64(len(cov.Matchings))
		}
		b.ReportMetric(size, "matchings")
	})
	b.Run("exact", func(b *testing.B) {
		var size float64
		for i := 0; i < b.N; i++ {
			cov, err := tmatch.ExactCover(g, lib, tmatch.Constraints{}, nil, 30)
			if err != nil {
				b.Fatal(err)
			}
			size = float64(len(cov.Matchings))
		}
		b.ReportMetric(size, "matchings")
	})
}

// BenchmarkDetectScan measures the detector's full-design scan cost — the
// practical price of the "visit each node as a candidate root" procedure.
func BenchmarkDetectScan(b *testing.B) {
	g := designs.Layered(designs.MediaBench()[4].Cfg) // 1755 ops
	cp, err := g.CriticalPath()
	if err != nil {
		b.Fatal(err)
	}
	cfg := schedwm.Config{Tau: 20, K: 4, Epsilon: 0.25, Budget: cp + 6}
	wm, err := schedwm.Embed(g, benchSig, cfg)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sched.ListSchedule(g, sched.ListOpts{UseTemporal: true})
	if err != nil {
		b.Fatal(err)
	}
	shipped := g.Clone()
	shipped.ClearTemporalEdges()
	rec := wm.Record()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det, err := schedwm.Detect(shipped, s, rec)
		if err != nil {
			b.Fatal(err)
		}
		if !det.Found {
			b.Fatal("watermark lost")
		}
	}
}

// Substrate micro-benchmarks.

func BenchmarkListSchedule(b *testing.B) {
	g := designs.Layered(designs.MediaBench()[6].Cfg) // 1422 ops
	res := sched.Resources{}
	res[sched.FUALU] = 8
	res[sched.FUMul] = 4
	res[sched.FUMem] = 4
	res[sched.FUBr] = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.ListSchedule(g, sched.ListOpts{Res: res}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFDSchedule(b *testing.B) {
	g := designs.WaveletFilter()
	cp, err := g.CriticalPath()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.FDSchedule(g, sched.FDSOpts{Budget: 2 * cp}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVLIWCompile(b *testing.B) {
	m := vliw.Default()
	g := designs.Layered(designs.MediaBench()[7].Cfg) // 1372 ops
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Compile(g, nil, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmbedSchedulingWatermark(b *testing.B) {
	tmplCfg := designs.MediaBench()[3].Cfg
	g := designs.Layered(tmplCfg)
	cp, err := g.CriticalPath()
	if err != nil {
		b.Fatal(err)
	}
	cfg := schedwm.Config{Tau: 20, K: 4, Epsilon: 0.25, Budget: cp + 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh := designs.Layered(tmplCfg)
		if _, err := schedwm.Embed(fresh, benchSig, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyCoverLarge(b *testing.B) {
	g := designs.LongEchoCanceler()
	lib := tmatch.StandardLibrary()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tmatch.GreedyCover(g, lib, tmatch.Constraints{}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBindingAffinity (ablation): interconnect switches with and
// without producer-affinity in functional-unit binding.
func BenchmarkBindingAffinity(b *testing.B) {
	g := designs.LongEchoCanceler()
	res := sched.Resources{}
	res[sched.FUALU] = 2
	res[sched.FUMul] = 3
	s, err := sched.ListSchedule(g, sched.ListOpts{Res: res})
	if err != nil {
		b.Fatal(err)
	}
	for _, affinity := range []bool{false, true} {
		affinity := affinity
		b.Run(fmt.Sprintf("affinity=%v", affinity), func(b *testing.B) {
			switches := 0.0
			for i := 0; i < b.N; i++ {
				bind, err := sched.BindFUs(g, s, affinity)
				if err != nil {
					b.Fatal(err)
				}
				switches = float64(bind.Switches)
			}
			b.ReportMetric(switches, "switches")
		})
	}
}

// BenchmarkGraphColoringWatermark: the paradigm's third instantiation —
// embed+detect cost and proof strength on a coloring instance.
func BenchmarkGraphColoringWatermark(b *testing.B) {
	g, err := gcolor.RandomGraph("bench", 300, 1, 14)
	if err != nil {
		b.Fatal(err)
	}
	var pcExp float64
	for i := 0; i < b.N; i++ {
		marked := g.Clone()
		wm, err := gcolor.Embed(marked, benchSig, gcolor.Config{Tau: 40, K: 60})
		if err != nil {
			b.Fatal(err)
		}
		col := gcolor.DSATUR(marked)
		det, err := gcolor.Detect(g, col, wm.Record())
		if err != nil {
			b.Fatal(err)
		}
		if !det.Found {
			b.Fatal("coloring watermark lost")
		}
		pcExp = det.Pc.Exponent10()
	}
	b.ReportMetric(-pcExp, "pc-exp10")
}

// BenchmarkCacheLocality (ablation): miss rate of the realistic address
// stream versus the uniform-hash default on the 8-KB cache.
func BenchmarkCacheLocality(b *testing.B) {
	m := vliw.Default()
	g := designs.Layered(designs.MediaBench()[2].Cfg) // epic: memory-heavy
	cases := []struct {
		name string
		addr vliw.AddressFunc
	}{
		{"uniform", nil},
		{"realistic", designs.AddressMap(g, 0)},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var missPct float64
			for i := 0; i < b.N; i++ {
				r, err := m.Compile(g, c.addr, false)
				if err != nil {
					b.Fatal(err)
				}
				if r.CacheHits+r.CacheMiss > 0 {
					missPct = float64(r.CacheMiss) / float64(r.CacheHits+r.CacheMiss) * 100
				}
			}
			b.ReportMetric(missPct, "miss%")
		})
	}
}

// BenchmarkEmbedManyParallel compares sequential EmbedMany against the
// parallel engine at several worker counts on the largest registry design
// (n=16 independent local watermarks). workers=1 is the sequential
// baseline; the byte-compare in cmd/lwm bench already guards identity, so
// this benchmark only tracks the time split. On a single-CPU host the
// parallel rows measure pure speculation overhead.
func BenchmarkEmbedManyParallel(b *testing.B) {
	tmplCfg := designs.MediaBench()[4].Cfg // 1755 ops
	g := designs.Layered(tmplCfg)
	cp, err := g.CriticalPath()
	if err != nil {
		b.Fatal(err)
	}
	cfg := schedwm.Config{Tau: 14, K: 3, Epsilon: 0.1, Budget: cp + cp/2 + 2}
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var embedded float64
			for i := 0; i < b.N; i++ {
				fresh := g.Clone()
				wms, err := engine.EmbedMany(fresh, benchSig, cfg, 16, workers)
				if err != nil {
					b.Fatal(err)
				}
				embedded = float64(len(wms))
			}
			b.ReportMetric(embedded, "watermarks")
		})
	}
}

// BenchmarkScale10k pushes the full pipeline through a 10 000-operation
// design: embed 20 local watermarks, schedule, and detect one — the
// throughput story a production adopter cares about.
func BenchmarkScale10k(b *testing.B) {
	cfg := designs.LayeredConfig{
		Name: "scale10k", Ops: 10000, Width: 24, Inputs: 32,
		Mix: designs.OpMix{Add: 35, Mul: 15, Logic: 15, Shift: 10, Cmp: 5, Load: 12, Store: 5, Branch: 3},
	}
	for i := 0; i < b.N; i++ {
		g := designs.Layered(cfg)
		cp, err := g.CriticalPath()
		if err != nil {
			b.Fatal(err)
		}
		wms, err := schedwm.EmbedMany(g, benchSig, schedwm.Config{
			Tau: 24, K: 6, TauPrime: 7, Epsilon: 0.25, Budget: cp + cp/10 + 2}, 20)
		if err != nil {
			b.Fatal(err)
		}
		s, err := sched.ListSchedule(g, sched.ListOpts{UseTemporal: true})
		if err != nil {
			b.Fatal(err)
		}
		shipped := g.Clone()
		shipped.ClearTemporalEdges()
		det, err := schedwm.Detect(shipped, s, wms[0].Record())
		if err != nil {
			b.Fatal(err)
		}
		if !det.Found {
			b.Fatal("watermark lost at scale")
		}
		b.ReportMetric(float64(len(wms)), "watermarks")
	}
}
