// Package localwm is the public face of the local-watermarking library: a
// from-scratch reproduction of "Local Watermarks: Methodology and
// Application to Behavioral Synthesis" (Kirovski & Potkonjak), including
// the full behavioral-synthesis substrate its evaluation depends on.
//
// The implementation lives in focused internal packages; this package
// re-exports the surface a downstream user needs:
//
//   - design modeling: CDFG construction, parsing, analysis (cdfg)
//   - synthesis: scheduling and template mapping (sched, tmatch)
//   - watermarking: embed/detect/verify for scheduling solutions
//     (schedwm), template matchings (tmwm), and graph colorings (gcolor)
//   - evaluation: the VLIW machine model, benchmark designs, attack
//     simulation (vliw, designs, attack)
//
// Quickstart:
//
//	design := localwm.FourthOrderParallelIIR()
//	wm, err := localwm.EmbedSchedulingWatermark(design,
//	        localwm.Signature("alice"), localwm.SchedulingConfig{
//	                Tau: 12, K: 3, Epsilon: 0.2, Budget: 10,
//	        })
//	schedule, err := localwm.Schedule(design, true)
//	shipped := design.Clone()
//	shipped.ClearTemporalEdges()
//	det, err := localwm.DetectSchedulingWatermark(shipped, schedule, wm.Record())
//
// See the runnable programs under examples/ and the experiment
// reproduction harness in cmd/tables.
package localwm

import (
	"io"

	"localwm/internal/cdfg"
	"localwm/internal/chaos"
	"localwm/internal/designs"
	"localwm/internal/engine"
	"localwm/internal/obs"
	"localwm/internal/prng"
	"localwm/internal/sched"
	"localwm/internal/schedwm"
	"localwm/internal/server"
	"localwm/internal/tmatch"
	"localwm/internal/tmwm"
	"localwm/lwmclient"
)

// Core modeling types.
type (
	// Graph is a control-data flow graph with homogeneous-SDF semantics.
	Graph = cdfg.Graph
	// NodeID names a node within one Graph.
	NodeID = cdfg.NodeID
	// Op is an operation kind.
	Op = cdfg.Op
	// Signature is an author's digital signature; it keys every
	// watermarking decision.
	Signature = prng.Signature
)

// Scheduling types.
type (
	// Schedule assigns control steps to operations.
	ScheduleResult = sched.Schedule
	// SchedulingConfig parameterizes scheduling-watermark embedding.
	SchedulingConfig = schedwm.Config
	// SchedulingWatermark is an embedded scheduling watermark.
	SchedulingWatermark = schedwm.Watermark
	// SchedulingRecord is the detector-facing description of a
	// scheduling watermark.
	SchedulingRecord = schedwm.Record
	// SchedulingDetection is the result of scanning a suspect schedule.
	SchedulingDetection = schedwm.Detection
	// SchedulingSuspect pairs a suspect design with its schedule for
	// batch detection.
	SchedulingSuspect = engine.Suspect
	// SchedulingDetectResult is one suspect×record outcome of a batch
	// detection.
	SchedulingDetectResult = engine.DetectResult
)

// Template-matching types.
type (
	// TemplateLibrary is a module library for template mapping.
	TemplateLibrary = tmatch.Library
	// TemplateConfig parameterizes template-watermark embedding.
	TemplateConfig = tmwm.Config
	// TemplateWatermark is an embedded template-matching watermark.
	TemplateWatermark = tmwm.Watermark
	// TemplateRecord is the detector-facing description.
	TemplateRecord = tmwm.Record
)

// Common operation kinds and edge kinds, re-exported for graph
// construction without importing internal packages (the full taxonomy
// lives in internal/cdfg).
const (
	OpInput    = cdfg.OpInput
	OpOutput   = cdfg.OpOutput
	OpAdd      = cdfg.OpAdd
	OpSub      = cdfg.OpSub
	OpMul      = cdfg.OpMul
	OpMulConst = cdfg.OpMulConst
	OpDelay    = cdfg.OpDelay

	DataEdge     = cdfg.DataEdge
	ControlEdge  = cdfg.ControlEdge
	TemporalEdge = cdfg.TemporalEdge
)

// NewGraph returns an empty CDFG with a capacity hint.
func NewGraph(n int) *Graph { return cdfg.New(n) }

// StandardLibrary returns the default template library.
func StandardLibrary() *TemplateLibrary { return tmatch.StandardLibrary() }

// EmbedSchedulingWatermark embeds one local scheduling watermark into g.
func EmbedSchedulingWatermark(g *Graph, sig Signature, cfg SchedulingConfig) (*SchedulingWatermark, error) {
	return schedwm.Embed(g, sig, cfg)
}

// EmbedSchedulingWatermarks embeds up to n independent local watermarks.
// When cfg.Parallelism is greater than 1 the watermarks are speculated
// concurrently on that many workers (internal/engine); the result is
// bit-identical to the sequential embedding either way.
func EmbedSchedulingWatermarks(g *Graph, sig Signature, cfg SchedulingConfig, n int) ([]*SchedulingWatermark, error) {
	return engine.EmbedMany(g, sig, cfg, n, cfg.Parallelism)
}

// DetectSchedulingWatermark scans a suspect scheduled design for a
// memorized watermark record.
func DetectSchedulingWatermark(g *Graph, s *ScheduleResult, rec SchedulingRecord) (*SchedulingDetection, error) {
	return schedwm.Detect(g, s, rec)
}

// VerifySchedulingOwnership adjudicates an ownership claim by re-deriving
// the constraints from the claimed signature. cfg.Parallelism > 1 runs the
// re-derivation on the parallel engine with an identical verdict.
func VerifySchedulingOwnership(g *Graph, s *ScheduleResult, sig Signature, cfg SchedulingConfig, n int) (*SchedulingDetection, error) {
	return engine.VerifyOwnership(g, s, sig, cfg, n, cfg.Parallelism)
}

// DetectSchedulingWatermarks checks many records against many suspect
// designs at once on cfg-independent worker fan-out: out[i][j] is record j
// scanned in suspect i. It wraps engine.DetectBatch; workers <= 1 runs
// sequentially with identical results.
func DetectSchedulingWatermarks(suspects []SchedulingSuspect, recs []SchedulingRecord, workers int) [][]SchedulingDetectResult {
	return engine.DetectBatch(suspects, recs, workers)
}

// EmbedTemplateWatermark enforces Z signature-selected matchings on g.
func EmbedTemplateWatermark(g *Graph, sig Signature, cfg TemplateConfig) (*TemplateWatermark, error) {
	return tmwm.Embed(g, sig, cfg)
}

// Schedule list-schedules g (honoring watermark temporal edges when
// useTemporal is set) with unlimited resources.
func Schedule(g *Graph, useTemporal bool) (*ScheduleResult, error) {
	return sched.ListSchedule(g, sched.ListOpts{UseTemporal: useTemporal})
}

// Benchmark designs (see internal/designs for the full set).
var (
	// FourthOrderParallelIIR is the paper's running example.
	FourthOrderParallelIIR = designs.FourthOrderParallelIIR
	// EighthOrderCFIIR is the Table II cascade IIR.
	EighthOrderCFIIR = designs.EighthOrderCFIIR
)

// ParseGraph reads a design in the text format (see cdfg.Parse).
var ParseGraph = cdfg.Parse

// WriteGraph writes a design in the text format (see cdfg.Write).
var WriteGraph = cdfg.Write

// ParseSchedule reads a schedule in the text format, resolving node
// names against g (see sched.ParseSchedule).
func ParseSchedule(g *Graph, r io.Reader) (*ScheduleResult, error) {
	return sched.ParseSchedule(g, r)
}

// WriteSchedule writes s in the text schedule format (see
// sched.WriteSchedule).
func WriteSchedule(w io.Writer, g *Graph, s *ScheduleResult) error {
	return sched.WriteSchedule(w, g, s)
}

// Service surface: the watermarking daemon behind cmd/lwmd, embeddable
// in a larger process.
type (
	// ServiceConfig sizes the daemon's worker pools, admission queues,
	// and deadlines; the zero value serves with defaults.
	ServiceConfig = server.Config
	// Service is the HTTP watermarking service. Mount Handler() on the
	// serving port, DebugHandler() on a loopback-only port, and call
	// Shutdown to drain gracefully.
	Service = server.Server
	// EngineCounters is a snapshot of the parallel engine's cumulative
	// pool and speculation activity.
	EngineCounters = engine.Counters
)

// NewService builds a watermarking service and starts its worker pools.
func NewService(cfg ServiceConfig) *Service { return server.New(cfg) }

// Resilient-client surface: the HTTP client behind `lwm -remote`,
// embeddable in a downstream process that talks to a lwmd daemon.
type (
	// ClientConfig parameterizes the resilient service client: deadlines,
	// retry backoff, circuit breaker, and batch chunking. Only BaseURL is
	// required.
	ClientConfig = lwmclient.Config
	// Client is the resilient lwmd client: capped exponential backoff
	// with full jitter, Retry-After honoring, a rolling-window circuit
	// breaker, and chunked batch detection with partial results.
	Client = lwmclient.Client
	// ClientBreakerConfig tunes the client's circuit breaker.
	ClientBreakerConfig = lwmclient.BreakerConfig
	// ClientCounters is a snapshot of a client's attempt, retry, and
	// breaker activity.
	ClientCounters = lwmclient.Counters
)

// NewClient builds a resilient client for the lwmd service at
// cfg.BaseURL.
func NewClient(cfg ClientConfig) (*Client, error) { return lwmclient.New(cfg) }

// Fault-injection surface: the deterministic chaos layer behind
// `lwmd -chaos`, for exercising resilience in tests (never production).
type (
	// ChaosConfig sets seeded per-request fault probabilities: latency,
	// connection resets, substituted 500s, truncated bodies.
	ChaosConfig = chaos.Config
	// ChaosInjector is HTTP middleware injecting the configured faults;
	// assign one to ServiceConfig.Chaos to fault a Service's /v1 API.
	ChaosInjector = chaos.Injector
)

// NewChaosInjector builds a deterministic fault injector; a given seed
// and request order replays the same fault sequence.
func NewChaosInjector(cfg ChaosConfig) *ChaosInjector { return chaos.New(cfg) }

// EngineStats returns the process-wide parallel-engine counters.
func EngineStats() EngineCounters { return engine.Stats() }

// OracleStats reports cumulative longest-path cache hits and misses
// across every cdfg.PathOracle in the process.
var OracleStats = cdfg.OracleStats

// Observability surface (internal/obs): request tracing, structured
// request logging, and Prometheus-style metrics.
//
// Tracing: attach a Trace to a context with WithTrace and pass that
// context to a Client call — the client hangs its attempt/backoff spans
// on it, sends the trace ID in TraceHeader, and the daemon logs its
// side under the same ID. The Service exposes the Prometheus scrape on
// GET /metrics of both Handler() and DebugHandler(); a Client exposes
// its own lwmclient_* counters via Client.WritePrometheus, for
// embedding applications that serve their own metrics page.
type (
	// Trace is a process-local span collection for one logical request.
	Trace = obs.Trace
	// TraceID identifies one logical request across processes; it
	// travels in the TraceHeader HTTP header.
	TraceID = obs.TraceID
	// TraceSpan is one named, timed region of a Trace.
	TraceSpan = obs.Span
	// MetricsRegistry is a Prometheus-style registry of counters,
	// gauges, and fixed-bucket histograms (text exposition format 0.0.4
	// via WritePrometheus).
	MetricsRegistry = obs.Registry
	// MetricsHistogram is a fixed-bucket latency histogram.
	MetricsHistogram = obs.Histogram
)

// Trace-propagation constants: the request and response headers the
// client and daemon exchange.
const (
	// TraceHeader carries the trace ID from client to daemon.
	TraceHeader = obs.TraceHeader
	// TimingHeader carries the daemon's queue-wait/run stage timings
	// back to a tracing client.
	TimingHeader = obs.TimingHeader
)

// NewTrace starts an empty trace under the given ID.
var NewTrace = obs.NewTrace

// NewTraceID returns a process-unique trace ID.
var NewTraceID = obs.NewTraceID

// WithTrace attaches a trace to a context (see obs.WithTrace);
// TraceFromContext retrieves it.
var (
	WithTrace        = obs.WithTrace
	TraceFromContext = obs.TraceFrom
)

// NewMetricsRegistry returns an empty metrics registry.
var NewMetricsRegistry = obs.NewRegistry

// NewStructuredLogger builds a log/slog logger in the daemon's format
// ("text" or "json") at the given level, suitable for
// ServiceConfig.Logger, ClientConfig.Logger, and ChaosConfig.Logger.
var NewStructuredLogger = obs.NewLogger

// ParseLogLevel maps "debug", "info", "warn", or "error" to a
// slog.Level for NewStructuredLogger.
var ParseLogLevel = obs.ParseLevel
